(** Abacus row legalisation (Spindler-Schlichtmann-Johannes).

    Cells are processed in order of desired x. For each cell, candidate
    rows near its global-placement position are *simulated*: the cell is
    appended to the row's cluster structure, clusters that would overlap
    collapse into one placed at its displacement-optimal position, and the
    resulting displacement of the new cell is the row's cost. The best row
    wins and the simulation is committed. Cluster stacks are immutable
    lists, so simulation is free of copying hazards.

    Blockages fragment rows into independent segments. All movable cells
    are single-row-height in the default library. *)

open Netlist

(* A cluster of abutting cells. [e] total weight, [q] the optimality
   accumulator (position = q/e before clamping), [w] total width,
   [members] the cell ids rightmost-first (final positions are derived
   from cluster positions and member widths at the end). *)
type cluster = { e : float; q : float; w : float; members : int list }

type segment = {
  seg_xl : float;
  seg_xh : float;
  mutable clusters : cluster list; (* rightmost first *)
  mutable used : float; (* total cell width committed *)
}

type row = { row_y : float; segments : segment array }

let cluster_pos seg c =
  Float.max seg.seg_xl (Float.min (seg.seg_xh -. c.w) (c.q /. c.e))

(* Append a cell cluster and collapse overlaps; returns the final stack. *)
let rec collapse seg stack c =
  match stack with
  | [] -> [ c ]
  | p :: rest ->
      let xp = cluster_pos seg p and xc = cluster_pos seg c in
      if xp +. p.w > xc +. 1e-9 then
        (* Merge p (left) with c (right). *)
        collapse seg rest
          {
            e = p.e +. c.e;
            q = p.q +. c.q -. (c.e *. p.w);
            w = p.w +. c.w;
            members = c.members @ p.members;
          }
      else c :: p :: rest

(* Simulate inserting a cell with desired left edge [x'] and width [w];
   returns (new stack, final left edge of the inserted cell) or None when
   the segment cannot hold it. *)
let simulate seg ~x' ~w ~id =
  if seg.used +. w > seg.seg_xh -. seg.seg_xl +. 1e-9 then None
  else begin
    let stack = collapse seg seg.clusters { e = 1.0; q = x'; w; members = [ id ] } in
    match stack with
    | [] -> assert false
    | top :: _ ->
        let x_top = cluster_pos seg top in
        Some (stack, x_top +. top.w -. w)
  end

let build_rows (d : Design.t) =
  let die = d.die in
  let nrows = int_of_float (floor (Geom.Rect.height die /. d.row_height)) in
  let blockages = ref [] in
  for i = Design.num_cells d - 1 downto 0 do
    if Design.kind d i = Design.Blockage then blockages := Design.cell_rect d i :: !blockages
  done;
  let blockages = !blockages in
  Array.init nrows (fun k ->
      let yl = die.yl +. (float_of_int k *. d.row_height) in
      let yh = yl +. d.row_height in
      let row_y = (yl +. yh) /. 2.0 in
      let cuts =
        List.filter_map
          (fun (r : Geom.Rect.t) ->
            if r.yl < yh -. 1e-9 && r.yh > yl +. 1e-9 then Some (r.xl, r.xh) else None)
          blockages
        |> List.sort compare
      in
      let segments = ref [] in
      let cur = ref die.xl in
      List.iter
        (fun (cxl, cxh) ->
          if cxl > !cur +. 0.5 then
            segments := { seg_xl = !cur; seg_xh = cxl; clusters = []; used = 0.0 } :: !segments;
          cur := Float.max !cur cxh)
        cuts;
      if die.xh > !cur +. 0.5 then
        segments := { seg_xl = !cur; seg_xh = die.xh; clusters = []; used = 0.0 } :: !segments;
      { row_y; segments = Array.of_list (List.rev !segments) })

(** Legalise in place; returns total Manhattan displacement.
    Raises [Util.Errors.Error (Infeasible _)] when some cell cannot be
    placed anywhere. *)
let run (d : Design.t) =
  let rows = build_rows d in
  let nrows = Array.length rows in
  if nrows = 0 then Util.Errors.infeasible ~stage:"legalize" "die has no rows";
  let order =
    Design.movable_ids d
    |> List.sort (fun a b -> compare (d.x.{a} -. (d.w.{a} /. 2.0)) (d.x.{b} -. (d.w.{b} /. 2.0)))
    |> Array.of_list
  in
  let desired_xs = Design.farr_copy d.x in
  let disp_y = ref 0.0 in
  Array.iter
    (fun id ->
      let w = d.w.{id} in
      let desired_x = d.x.{id} -. (w /. 2.0) in
      let desired_y = d.y.{id} in
      let target_row =
        int_of_float
          (Float.round ((desired_y -. d.die.yl -. (d.row_height /. 2.0)) /. d.row_height))
      in
      let target_row = max 0 (min (nrows - 1) target_row) in
      let best_cost = ref Float.infinity in
      let best = ref None in
      let try_row k =
        if k >= 0 && k < nrows then begin
          let row = rows.(k) in
          Array.iter
            (fun seg ->
              match simulate seg ~x':desired_x ~w ~id with
              | None -> ()
              | Some (stack, x_final) ->
                  let cost =
                    Float.abs (x_final -. desired_x) +. Float.abs (row.row_y -. desired_y)
                  in
                  if cost < !best_cost then begin
                    best_cost := cost;
                    best := Some (seg, stack, x_final, k)
                  end)
            row.segments
        end
      in
      let radius = ref 0 in
      let searching = ref true in
      while !searching do
        try_row (target_row - !radius);
        if !radius > 0 then try_row (target_row + !radius);
        incr radius;
        let row_floor = float_of_int (!radius - 1) *. d.row_height in
        if (!best <> None && row_floor > !best_cost) || !radius > nrows then searching := false
      done;
      match !best with
      | None ->
          Util.Errors.infeasible ~stage:"legalize"
            (Printf.sprintf "no room for cell %s anywhere on the die" (Design.cell_name d id))
      | Some (seg, stack, _x_final, k) ->
          seg.clusters <- stack;
          seg.used <- seg.used +. w;
          disp_y := !disp_y +. Float.abs (rows.(k).row_y -. desired_y);
          d.y.{id} <- rows.(k).row_y)
    order;
  (* Materialise x positions from the final cluster structure: later
     insertions may have collapsed clusters and moved earlier cells. *)
  Array.iter
    (fun row ->
      Array.iter
        (fun seg ->
          List.iter
            (fun cl ->
              let x = cluster_pos seg cl in
              let right = ref (x +. cl.w) in
              List.iter
                (fun id ->
                  let w = d.w.{id} in
                  d.x.{id} <- !right -. (w /. 2.0);
                  right := !right -. w)
                cl.members)
            seg.clusters)
        row.segments)
    rows;
  (* Exact total displacement: x against the pre-legalisation positions
     (cluster collapses moved cells after their commit), plus the row
     moves accumulated above. *)
  let disp_x = ref 0.0 in
  Array.iter (fun id -> disp_x := !disp_x +. Float.abs (d.x.{id} -. desired_xs.{id})) order;
  !disp_x +. !disp_y

(** Check that no two movable cells overlap and every movable cell sits
    in a row. *)
let is_legal (d : Design.t) =
  let movables = Design.movable_ids d in
  let in_rows =
    List.for_all
      (fun id ->
        let yc = d.y.{id} -. d.die.yl -. (d.row_height /. 2.0) in
        Float.abs (yc -. (Float.round (yc /. d.row_height) *. d.row_height)) < 1e-6)
      movables
  in
  let rects = List.map (fun id -> (id, Design.cell_rect d id)) movables in
  let sorted = List.sort (fun (_, (a : Geom.Rect.t)) (_, b) -> compare a.xl b.xl) rects in
  let arr = Array.of_list sorted in
  let overlap = ref false in
  Array.iteri
    (fun i (_, (r : Geom.Rect.t)) ->
      let j = ref (i + 1) in
      while !j < Array.length arr && (snd arr.(!j)).Geom.Rect.xl < r.xh -. 1e-9 do
        if Geom.Rect.overlap_area r (snd arr.(!j)) > 1e-9 then overlap := true;
        incr j
      done)
    arr;
  in_rows && not !overlap
