(** Disjoint-set forest with path compression and union by rank. *)

type t

(** [create n] makes [n] singleton sets, elements [0 .. n-1]. *)
val create : int -> t

(** Canonical representative of the element's set. *)
val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b]; [false] when they were
    already together. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool
