(** Data-parallel loops over OCaml 5 domains, backed by a persistent
    worker pool.

    Stands in for the paper's CUDA kernels: all heavy per-pin / per-bin
    kernels are embarrassingly parallel, so a chunked domain fan-out keeps
    the same semantics. Workers are spawned lazily on the first dispatch
    and parked on a condition variable between calls, so a Nesterov
    iteration issuing dozens of kernel launches pays the spawn cost once
    per process, not once per call.

    Determinism contract (see the .mli): every reduction partitions
    [0, n) into exactly [num_domains] fixed contiguous chunks and combines
    the per-chunk results in chunk order, whether or not the pool actually
    ran — results depend only on (n, domain count), never on scheduling. *)

let num_domains = ref 1

let set_num_domains n = num_domains := max 1 (min 128 n)

(* ------------------------------------------------------------------ *)
(* Persistent pool: [num_workers] parked domains plus the caller domain.
   One job at a time; dispatch bumps [generation] and broadcasts, the
   barrier waits for [pending] to drain. The pool only ever grows (to the
   largest worker count requested so far) — shrinking [num_domains] just
   leaves the extra workers parked, so a fixed domain count spawns each
   worker at most once per process. *)

let pool_mutex = Mutex.create ()

let work_ready = Condition.create ()

let work_done = Condition.create ()

let workers : unit Domain.t list ref = ref []

let num_workers = ref 0

let generation = ref 0

let current_job : (int -> unit) option ref = ref None

let job_chunks = ref 0

let pending = ref 0

let stop_flag = ref false

let spawn_count = ref 0

let exit_registered = ref false

(* First exception raised inside a worker body this job (re-raised at the
   caller after the barrier; the pool itself survives). *)
let worker_error : (exn * Printexc.raw_backtrace) option ref = ref None

(* True while a job is in flight; a nested dispatch would deadlock on the
   barrier, so it is rejected instead. *)
let busy = Atomic.make false

let spawned () = !spawn_count

let rec worker_loop wid my_gen =
  Mutex.lock pool_mutex;
  while !generation = my_gen && not !stop_flag do
    Condition.wait work_ready pool_mutex
  done;
  if !stop_flag then Mutex.unlock pool_mutex
  else begin
    let gen = !generation in
    let body = !current_job and chunks = !job_chunks in
    Mutex.unlock pool_mutex;
    (match body with
    | Some f when wid + 1 < chunks -> (
        try f (wid + 1)
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool_mutex;
          if !worker_error = None then worker_error := Some (e, bt);
          Mutex.unlock pool_mutex)
    | _ -> ());
    Mutex.lock pool_mutex;
    decr pending;
    if !pending = 0 then Condition.broadcast work_done;
    Mutex.unlock pool_mutex;
    worker_loop wid gen
  end

let shutdown () =
  Mutex.lock pool_mutex;
  let ws = !workers in
  if ws <> [] then begin
    stop_flag := true;
    Condition.broadcast work_ready;
    workers := [];
    num_workers := 0
  end;
  Mutex.unlock pool_mutex;
  List.iter Domain.join ws;
  Mutex.lock pool_mutex;
  stop_flag := false;
  Mutex.unlock pool_mutex

(* Grow the pool to at least [w] workers. Caller must not hold the lock. *)
let ensure_workers w =
  if !num_workers < w then begin
    Mutex.lock pool_mutex;
    while !num_workers < w do
      let wid = !num_workers in
      let gen = !generation in
      incr spawn_count;
      workers := Domain.spawn (fun () -> worker_loop wid gen) :: !workers;
      incr num_workers
    done;
    Mutex.unlock pool_mutex;
    if not !exit_registered then begin
      exit_registered := true;
      at_exit shutdown
    end
  end

(* Run [body c] for [c] in [0, chunks): chunk 0 on the calling domain,
   the rest on pool workers. Exceptions from any chunk re-raise here;
   the pool stays usable afterwards. *)
let run_pool ~chunks body =
  if not (Atomic.compare_and_set busy false true) then
    invalid_arg "Util.Parallel: nested parallel dispatch (a kernel body called a parallel entry point)";
  ensure_workers (chunks - 1);
  Mutex.lock pool_mutex;
  worker_error := None;
  current_job := Some body;
  job_chunks := chunks;
  pending := !num_workers;
  incr generation;
  Condition.broadcast work_ready;
  Mutex.unlock pool_mutex;
  let main_error =
    try
      body 0;
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock pool_mutex;
  while !pending > 0 do
    Condition.wait work_done pool_mutex
  done;
  current_job := None;
  let werr = !worker_error in
  worker_error := None;
  Mutex.unlock pool_mutex;
  Atomic.set busy false;
  match main_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> (
      match werr with Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())

(* ------------------------------------------------------------------ *)
(* Instrumentation hook: per-call kernel stats (wall time, per-chunk
   times for imbalance) delivered to an installed observer — the obs
   layer wires this to histograms without util depending on obs. *)

type stats = {
  kernel : string;
  n : int;
  chunks : int;
  total_s : float; (* wall time of the whole call *)
  chunk_s : float array; (* per-chunk wall time, length [chunks] *)
}

let instrument : (stats -> unit) option ref = ref None

let set_instrument h = instrument := h

let instrumented () = !instrument <> None

let now () = Unix.gettimeofday ()

let run_inline ~chunks body =
  for c = 0 to chunks - 1 do
    body c
  done

(* Run [body] over [chunks] chunk ids, via the pool when [dispatch],
   inline otherwise; report to the instrument hook when installed and the
   call is named. *)
let launch ?name ~n ~chunks ~dispatch body =
  match (!instrument, name) with
  | Some hook, Some kernel ->
      let chunk_s = Array.make chunks 0.0 in
      let timed c =
        let t0 = now () in
        body c;
        chunk_s.(c) <- now () -. t0
      in
      let t0 = now () in
      if dispatch then run_pool ~chunks timed else run_inline ~chunks timed;
      hook { kernel; n; chunks; total_s = now () -. t0; chunk_s }
  | _ -> if dispatch then run_pool ~chunks body else run_inline ~chunks body

(* ------------------------------------------------------------------ *)
(* Entry points. [grain] is the dispatch threshold: below it the call
   runs inline (still on the deterministic chunk partition for
   reductions); at or above it the pool is used. *)

let seq_for n f =
  for i = 0 to n - 1 do
    f i
  done

let for_ ?(grain = 1024) ?name n f =
  let d = !num_domains in
  if d <= 1 || n < grain then launch ?name ~n ~chunks:1 ~dispatch:false (fun _ -> seq_for n f)
  else begin
    let per = (n + d - 1) / d in
    let body c =
      let lo = c * per and hi = min n ((c + 1) * per) in
      for i = lo to hi - 1 do
        f i
      done
    in
    launch ?name ~n ~chunks:d ~dispatch:true body
  end

let chunk_count ~n = if !num_domains <= 1 || n <= 0 then 1 else !num_domains

let for_chunks ?(grain = 256) ?name ~n f =
  let d = !num_domains in
  if d <= 1 then launch ?name ~n ~chunks:1 ~dispatch:false (fun _ -> f ~chunk:0 ~lo:0 ~hi:n)
  else begin
    let per = (n + d - 1) / d in
    let body c =
      let lo = c * per and hi = min n ((c + 1) * per) in
      if lo < hi then f ~chunk:c ~lo ~hi
    in
    launch ?name ~n ~chunks:d ~dispatch:(n >= grain) body
  end

let sum ?(grain = 1024) ?name n f =
  let d = !num_domains in
  if d <= 1 then begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. f i
    done;
    !acc
  end
  else begin
    (* Fixed partition into d chunks whether or not the pool runs: the
       float association depends only on (n, d). *)
    let per = (n + d - 1) / d in
    let partial = Array.make d 0.0 in
    let body c =
      let lo = c * per and hi = min n ((c + 1) * per) in
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. f i
      done;
      partial.(c) <- !acc
    in
    launch ?name ~n ~chunks:d ~dispatch:(n >= grain) body;
    Array.fold_left ( +. ) 0.0 partial
  end

let map_reduce ?(grain = 256) ?name n ~init ~map ~combine =
  let d = !num_domains in
  if d <= 1 then begin
    let acc = ref init in
    for i = 0 to n - 1 do
      acc := combine !acc (map i)
    done;
    !acc
  end
  else begin
    let per = (n + d - 1) / d in
    let partial = Array.make d init in
    let body c =
      let lo = c * per and hi = min n ((c + 1) * per) in
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (map i)
      done;
      partial.(c) <- !acc
    in
    launch ?name ~n ~chunks:d ~dispatch:(n >= grain) body;
    Array.fold_left combine init partial
  end

let iter_chunks_scratch ?grain ?name ~n ~scratch f =
  let k = chunk_count ~n in
  let bufs = Array.init k (fun _ -> scratch ()) in
  for_chunks ?grain ?name ~n (fun ~chunk ~lo ~hi -> f ~scratch:bufs.(chunk) ~chunk ~lo ~hi);
  bufs
