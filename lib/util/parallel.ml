(** Data-parallel loops over OCaml 5 domains.

    Stands in for the paper's CUDA kernels: all heavy per-pin / per-bin
    kernels are embarrassingly parallel, so a chunked domain fan-out keeps
    the same semantics. [num_domains] defaults to 1 (sequential) so tests
    and benches are deterministic in scheduling-sensitive timing; flows can
    opt in to more domains. *)

let num_domains = ref 1

let set_num_domains n = num_domains := max 1 n

(** [for_ n f] runs [f i] for all [0 <= i < n], chunked across domains. *)
let for_ n f =
  let d = !num_domains in
  if d <= 1 || n < 1024 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let chunk = (n + d - 1) / d in
    let worker k () =
      let lo = k * chunk and hi = min n ((k + 1) * chunk) in
      for i = lo to hi - 1 do
        f i
      done
    in
    let spawned = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned
  end

(** Parallel reduction of [f i] over [0 <= i < n] with combiner [( + )]. *)
let sum n f =
  let d = !num_domains in
  if d <= 1 || n < 1024 then begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. f i
    done;
    !acc
  end
  else begin
    let chunk = (n + d - 1) / d in
    let worker k () =
      let lo = k * chunk and hi = min n ((k + 1) * chunk) in
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. f i
      done;
      !acc
    in
    let spawned = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let first = worker 0 () in
    List.fold_left (fun acc dmn -> acc +. Domain.join dmn) first spawned
  end

(** [for_chunks ~n f] splits [0, n) into one contiguous chunk per domain
    and runs [f ~chunk ~lo ~hi] for each — the building block for kernels
    that need per-domain accumulation buffers. [chunk] indexes the buffer;
    chunks are disjoint. Sequential (one chunk) when domains = 1. *)
let for_chunks ~n f =
  let d = !num_domains in
  if d <= 1 || n < 256 then f ~chunk:0 ~lo:0 ~hi:n
  else begin
    let per = (n + d - 1) / d in
    let worker k () =
      let lo = k * per and hi = min n ((k + 1) * per) in
      if lo < hi then f ~chunk:k ~lo ~hi
    in
    let spawned = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned
  end

(** Number of chunks [for_chunks] will use for a problem of size [n]. *)
let chunk_count ~n = if !num_domains <= 1 || n < 256 then 1 else !num_domains
