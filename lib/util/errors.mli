(** The typed error taxonomy for the placement pipeline. User-provokable
    failures raise {!Error} with a structured payload; binaries map it to
    a distinct exit code and a machine-readable report. Programmer errors
    stay as [Invalid_argument]/assertions. *)

type t =
  | Invalid_design of { design : string; problems : string list }
  | Diverged of { stage : string; detail : string; recoveries : int }
  | Config_error of { what : string; detail : string }
  | Infeasible of { stage : string; detail : string }
  | Parse_failed of { file : string; line : int; detail : string }

exception Error of t

val fail : t -> 'a

val invalid_design : design:string -> string list -> 'a

val diverged : stage:string -> ?recoveries:int -> string -> 'a

val config_error : what:string -> string -> 'a

val infeasible : stage:string -> string -> 'a

val parse_failed : file:string -> line:int -> string -> 'a

(** Stable machine-readable tag: invalid_design | diverged |
    config_error | infeasible | parse_error. *)
val kind : t -> string

(** Distinct nonzero process exit code per kind: config_error 2,
    invalid_design 3, diverged 4, infeasible 5, parse_error 6 (1 stays
    reserved for unexpected exceptions, 124/125 for cmdliner). *)
val exit_code : t -> int

(** Human-readable one-liner. *)
val message : t -> string

(** Flat key/value payload for structured reports. *)
val fields : t -> (string * string) list
