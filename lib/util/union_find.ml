(** Disjoint-set forest with path compression and union by rank. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

(** [union t a b] merges the sets of [a] and [b]; returns [false] when they
    were already in the same set. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end;
    true
  end

let same t a b = find t a = find t b
