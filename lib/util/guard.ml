(** Divergence guards: finiteness checks over float state.

    One NaN or infinity anywhere in the optimizer state silently poisons
    every subsequent iterate (NaN propagates through every arithmetic op
    and every comparison is false), so the placement loop probes its
    gradient and iterate each iteration and rolls back on detection. Full
    scans are O(n) with early exit; [sampled_finite] probes a fixed-stride
    subset for hot paths where even the O(n) pass is unwelcome — a NaN
    that slips past a sample is still caught by the next full check
    (HPWL, which sums every coordinate, is itself a full check). *)

let is_finite = Float.is_finite

(** Every element is finite (neither NaN nor infinite). *)
let all_finite (a : float array) =
  let n = Array.length a in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Float.is_finite (Array.unsafe_get a !i)) then ok := false;
    incr i
  done;
  !ok

(** [all_finite] over a float64 Bigarray (the SoA coordinate fields). *)
let all_finite_ba (a : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) =
  let n = Bigarray.Array1.dim a in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Float.is_finite (Bigarray.Array1.unsafe_get a !i)) then ok := false;
    incr i
  done;
  !ok

(** Index of the first non-finite element, if any. *)
let first_nonfinite (a : float array) =
  let n = Array.length a in
  let rec go i =
    if i >= n then None else if not (Float.is_finite a.(i)) then Some i else go (i + 1)
  in
  go 0

let count_nonfinite (a : float array) =
  Array.fold_left (fun acc v -> if Float.is_finite v then acc else acc + 1) 0 a

(** Probe at most [samples] elements on a fixed stride starting at
    [offset] (rotate the offset across calls to sweep the array over
    time). Falls back to the full scan for short arrays. A [true] result
    is *not* a proof of finiteness — pair with a periodic full check. *)
let sampled_finite ?(samples = 64) ?(offset = 0) (a : float array) =
  let n = Array.length a in
  if n <= 4 * samples then all_finite a
  else begin
    let stride = n / samples in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < samples do
      let i = (offset + (!k * stride)) mod n in
      if not (Float.is_finite a.(i)) then ok := false;
      incr k
    done;
    !ok
  end
