(** Named wall-clock accumulators for runtime breakdowns (Fig. 4).

    A registry maps component names ("sta", "extraction", "wl_grad", ...)
    to accumulated seconds; flows wrap their phases in [time]. *)

type t = { tbl : (string, float ref) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.tbl name r;
      r

let add t name seconds =
  let r = cell t name in
  r := !r +. seconds

(** Run [f ()], charging its wall-clock time to [name] on every exit —
    including exceptions, so a failing phase cannot corrupt a breakdown. *)
let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add t name (Unix.gettimeofday () -. t0)) f

let get t name = match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0.0

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.tbl 0.0

(** All (name, seconds) pairs, largest first. *)
let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset t = Hashtbl.reset t.tbl
