(** Data-parallel loops over OCaml 5 domains — the CPU stand-in for the
    paper's CUDA kernels. Defaults to sequential ([num_domains] = 1) so
    results are reproducible unless a flow opts in. *)

val num_domains : int ref

val set_num_domains : int -> unit

(** [for_ n f] runs [f i] for all [0 <= i < n]; chunked across domains
    when enabled and [n] is large. [f] must only write to disjoint
    locations per index. *)
val for_ : int -> (int -> unit) -> unit

(** Parallel sum of [f i] over [0 <= i < n]. *)
val sum : int -> (int -> float) -> float

(** Split [0, n) into one contiguous chunk per domain; [f ~chunk ~lo ~hi]
    runs once per chunk ([chunk] indexes per-domain buffers). *)
val for_chunks : n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit

(** Number of chunks {!for_chunks} uses for size [n]. *)
val chunk_count : n:int -> int
