(** Data-parallel loops over OCaml 5 domains — the CPU stand-in for the
    paper's CUDA kernels — backed by a persistent worker pool.

    {2 Pool lifecycle}

    [num_domains - 1] workers are spawned lazily on the first dispatching
    call and parked on a condition variable between calls, so per-call
    cost is a broadcast + barrier, not a [Domain.spawn]. The pool only
    grows (to the largest worker count requested so far); lowering
    [num_domains] leaves the extra workers parked. For a fixed domain
    count every worker is spawned at most once per process ({!spawned}
    counts them, which the tests assert). Workers are joined via an
    [at_exit] hook.

    {2 Determinism contract}

    For a fixed [num_domains] = d, every reduction ({!sum},
    {!map_reduce}) partitions [0, n) into exactly d fixed contiguous
    chunks (ceil(n/d) each), folds each chunk left-to-right, and combines
    the per-chunk results in chunk order — whether the call dispatched to
    the pool or ran inline below its [grain] threshold. Results therefore
    depend only on (n, d), never on scheduling, core count, or the grain.
    Different d generally associate floats differently; bitwise
    reproducibility holds per fixed d.

    {2 Nesting}

    Kernel bodies must not call a dispatching entry point (the barrier
    would deadlock): a nested dispatch raises [Invalid_argument]. Nested
    calls that stay below their grain run inline and are fine. *)

val num_domains : int ref

(** Set the domain count (clamped to [1, 128]). 1 = sequential. *)
val set_num_domains : int -> unit

(** Total pool workers spawned so far in this process. *)
val spawned : unit -> int

(** Join all pool workers (also installed as an [at_exit] hook). The pool
    respawns lazily if another parallel call follows. *)
val shutdown : unit -> unit

(** [for_ n f] runs [f i] for all [0 <= i < n]; chunked across domains
    when enabled and [n >= grain] (default 1024). [f] must only write to
    disjoint locations per index. *)
val for_ : ?grain:int -> ?name:string -> int -> (int -> unit) -> unit

(** Deterministic chunked sum of [f i] over [0 <= i < n] (see the
    determinism contract above). [grain] defaults to 1024. *)
val sum : ?grain:int -> ?name:string -> int -> (int -> float) -> float

(** [map_reduce n ~init ~map ~combine] folds [combine acc (map i)] over
    each fixed chunk starting from [init], then combines the per-chunk
    results in chunk order starting from [init] — [init] must be neutral
    for [combine]. Deterministic per the contract. [grain] default 256. *)
val map_reduce :
  ?grain:int -> ?name:string -> int -> init:'a -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a

(** Split [0, n) into one contiguous chunk per domain; [f ~chunk ~lo ~hi]
    runs once per non-empty chunk ([chunk] indexes per-domain buffers).
    The partition is the same whether the call dispatches ([n >= grain],
    default 256) or runs inline. *)
val for_chunks :
  ?grain:int -> ?name:string -> n:int -> (chunk:int -> lo:int -> hi:int -> unit) -> unit

(** Number of chunks {!for_chunks} uses for size [n] — [num_domains]
    when parallel (even for small [n]: determinism), 1 when sequential. *)
val chunk_count : n:int -> int

(** [iter_chunks_scratch ~n ~scratch f] allocates one scratch buffer per
    chunk with [scratch ()], runs [f ~scratch ~chunk ~lo ~hi] per chunk
    ({!for_chunks} semantics), and returns the buffers in chunk order for
    the caller to merge — the accumulate-then-merge pattern for kernels
    whose writes are not disjoint per index. *)
val iter_chunks_scratch :
  ?grain:int ->
  ?name:string ->
  n:int ->
  scratch:(unit -> 'b) ->
  (scratch:'b -> chunk:int -> lo:int -> hi:int -> unit) ->
  'b array

(** {2 Instrumentation} *)

(** Per-call kernel stats delivered to the installed hook. *)
type stats = {
  kernel : string;
  n : int;
  chunks : int;
  total_s : float; (* wall time of the whole call *)
  chunk_s : float array; (* per-chunk wall time, length [chunks] *)
}

(** Install (or clear) the observer called after every *named* parallel
    call — the obs layer wires this to span/histogram sinks without util
    depending on obs. Adds two clock reads per chunk when installed. *)
val set_instrument : (stats -> unit) option -> unit

(** Whether an instrumentation hook is currently installed. Allocation-
    sensitive kernels use this to decide between a closure-free direct
    call (sequential, uninstrumented) and a named parallel dispatch that
    keeps the [par.*] metrics alive. *)
val instrumented : unit -> bool
