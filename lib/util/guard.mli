(** Divergence guards: finiteness checks over float state. Used by the
    placement loop to detect a poisoned gradient/iterate and roll back
    instead of silently corrupting the run. *)

val is_finite : float -> bool

(** Every element is finite (neither NaN nor infinite). Early-exits on
    the first offender. *)
val all_finite : float array -> bool

val all_finite_ba : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> bool

(** Index of the first non-finite element, if any. *)
val first_nonfinite : float array -> int option

val count_nonfinite : float array -> int

(** Cheap sampled check for hot paths: probes at most [samples] elements
    on a fixed stride starting at [offset] (rotate the offset across
    calls to sweep the array). Full scan for short arrays. A [true]
    result is not a proof — pair with a periodic full check. *)
val sampled_finite : ?samples:int -> ?offset:int -> float array -> bool
