(** Small descriptive-statistics helpers over float arrays. *)

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_elt a = Array.fold_left Float.min Float.infinity a

let max_elt a = Array.fold_left Float.max Float.neg_infinity a

(** Linear-interpolated percentile, [p] in [0, 100]. *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median a = percentile a 50.0

(** Geometric mean of strictly positive values (used for ratio rows). *)
let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log (Float.max 1e-300 x)) 0.0 a in
    exp (acc /. float_of_int n)
  end

(** Coefficient of variation: stddev / |mean| (0 when mean is 0). *)
let coeff_variation a =
  let m = mean a in
  if Float.abs m < 1e-300 then 0.0 else stddev a /. Float.abs m
