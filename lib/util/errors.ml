(** The typed error taxonomy for the placement pipeline.

    Every failure a user (or a harness) can provoke maps to one of these
    constructors instead of a bare [Failure]/[Invalid_argument], so
    binaries can render a machine-readable report and exit with a
    distinct code, and tests can assert on the failure *kind* rather
    than a message substring. Programmer errors (index out of bounds,
    broken internal invariants) stay as [Invalid_argument]/[assert]. *)

type t =
  | Invalid_design of { design : string; problems : string list }
      (** The input design violates a structural or numeric invariant
          ([Design.validate], builder/IO structural checks). *)
  | Diverged of { stage : string; detail : string; recoveries : int }
      (** The optimizer state went non-finite and could not be recovered
          within the rollback budget. [recoveries] counts the rollbacks
          attempted before giving up. *)
  | Config_error of { what : string; detail : string }
      (** A flag, option, or [Tdp.Config] field is out of range. *)
  | Infeasible of { stage : string; detail : string }
      (** A well-formed input admits no solution at this stage (e.g. the
          legalizer cannot fit a cell anywhere). *)
  | Parse_failed of { file : string; line : int; detail : string }
      (** A foreign input file (Bookshelf, LEF/DEF, JSONL request) is
          syntactically malformed at [line]. Distinct from
          [Invalid_design]: the bytes never became a design at all. *)

exception Error of t

let fail e = raise (Error e)

let invalid_design ~design problems = fail (Invalid_design { design; problems })

let diverged ~stage ?(recoveries = 0) detail = fail (Diverged { stage; detail; recoveries })

let config_error ~what detail = fail (Config_error { what; detail })

let infeasible ~stage detail = fail (Infeasible { stage; detail })

let parse_failed ~file ~line detail = fail (Parse_failed { file; line; detail })

let kind = function
  | Invalid_design _ -> "invalid_design"
  | Diverged _ -> "diverged"
  | Config_error _ -> "config_error"
  | Infeasible _ -> "infeasible"
  | Parse_failed _ -> "parse_error"

(* Process exit codes for the binaries: 1 stays reserved for unexpected
   exceptions, 124/125 for cmdliner's own CLI/internal errors. *)
let exit_code = function
  | Config_error _ -> 2
  | Invalid_design _ -> 3
  | Diverged _ -> 4
  | Infeasible _ -> 5
  | Parse_failed _ -> 6

let message = function
  | Invalid_design { design; problems } ->
      Printf.sprintf "invalid design %s: %s" design (String.concat "; " problems)
  | Diverged { stage; detail; recoveries } ->
      Printf.sprintf "diverged in %s after %d recover%s: %s" stage recoveries
        (if recoveries = 1 then "y" else "ies")
        detail
  | Config_error { what; detail } -> Printf.sprintf "bad configuration (%s): %s" what detail
  | Infeasible { stage; detail } -> Printf.sprintf "infeasible in %s: %s" stage detail
  | Parse_failed { file; line; detail } ->
      Printf.sprintf "parse error in %s at line %d: %s" file line detail

(* Flat key/value view for structured (JSON) error reports; the JSON
   encoder lives above this library (lib/obs), so only strings here. *)
let fields = function
  | Invalid_design { design; problems } ->
      [ ("design", design); ("problems", String.concat "; " problems) ]
  | Diverged { stage; detail; recoveries } ->
      [ ("stage", stage); ("detail", detail); ("recoveries", string_of_int recoveries) ]
  | Config_error { what; detail } -> [ ("what", what); ("detail", detail) ]
  | Infeasible { stage; detail } -> [ ("stage", stage); ("detail", detail) ]
  | Parse_failed { file; line; detail } ->
      [ ("file", file); ("line", string_of_int line); ("detail", detail) ]

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Util.Errors.Error(%s: %s)" (kind e) (message e))
    | _ -> None)
