(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the project takes an explicit [t] so
    benchmark generation and placement flows are reproducible run-to-run,
    independent of OCaml's global [Random] state. *)

type t

(** [create seed] starts a stream; equal seeds give equal streams. *)
val create : int -> t

(** Independent copy: advancing the copy does not affect the original. *)
val copy : t -> t

(** Raw 64-bit output (primarily for tests). *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [range t lo hi] is uniform in [lo, hi). Requires [hi > lo]. *)
val range : t -> int -> int -> int

(** [float_range t lo hi] is uniform in [lo, hi). *)
val float_range : t -> float -> float -> float

val bool : t -> bool

(** [bernoulli t p] is true with probability [p]. *)
val bernoulli : t -> float -> bool

(** Standard normal deviate (Box-Muller). *)
val normal : t -> float

val gaussian : t -> mean:float -> stddev:float -> float

(** Geometric-like long-tail sample in [lo, hi]. *)
val long_tail : t -> lo:int -> hi:int -> p_grow:float -> int

(** Uniformly random permutation of [0 .. n-1] (Fisher-Yates). *)
val permutation : t -> int -> int array

(** Split off a statistically independent generator. *)
val split : t -> t

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a
