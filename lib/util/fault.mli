(** Fault injection for robustness tests: builds [float -> float]
    transforms (for the pipeline's test-only hooks) that corrupt a window
    of calls with NaN/Inf/huge values, and parses [FAULT_INJECT]-style
    spec strings ([site=kind@start+count], comma-separated). *)

type kind = Nan | Pos_inf | Neg_inf | Huge

type spec = { kind : kind; start : int; count : int (* < 0 = unbounded *) }

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val spec_to_string : spec -> string

(** Stateful transform corrupting calls [start, start+count) (all calls
    from [start] when [count < 0]); atomic counter, safe under parallel
    kernels. *)
val injector : spec -> float -> float

(** Parse one [kind@start[+count]] spec. *)
val parse_spec : string -> (spec, string) result

(** Parse a comma-separated [site=spec] list. *)
val parse : string -> ((string * spec) list, string) result
