(** Paper-style plain-text table rendering: the benches print their
    reproduced tables through this module so every experiment's output has
    a uniform, diffable shape. *)

type align = Left | Right

type t

(** Raises [Invalid_argument] when [headers] and [aligns] disagree. *)
val create : title:string -> headers:string list -> aligns:align list -> t

(** Raises [Invalid_argument] on column-count mismatch. *)
val add_row : t -> string list -> unit

(** Horizontal separator before the next row. *)
val add_sep : t -> unit

(** ["-"] for NaN, fixed-point otherwise. *)
val fmt_float : ?prec:int -> float -> string

val render : t -> string

val print : t -> unit
