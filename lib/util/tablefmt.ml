(** Paper-style plain-text table rendering.

    Benches print their reproduced tables through this module so every
    experiment's output has a uniform, diffable shape. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers ~aligns =
  if List.length headers <> List.length aligns then
    invalid_arg "Tablefmt.create: headers/aligns length mismatch";
  { title; headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_sep t = t.rows <- [] :: t.rows

let fmt_float ?(prec = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" prec v

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: List.filter (fun r -> r <> []) rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row r = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r in
  List.iter note_row all;
  let buf = Buffer.create 1024 in
  let total_width = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make total_width '=');
  Buffer.add_char buf '\n';
  let emit_row r =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      r;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      if r = [] then begin
        Buffer.add_string buf (String.make total_width '-');
        Buffer.add_char buf '\n'
      end
      else emit_row r)
    rows;
  Buffer.contents buf

let print t = print_string (render t)
