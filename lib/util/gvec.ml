(** Growable array (OCaml 5.1 lacks Dynarray). Amortised O(1) push,
    O(1) random access — the builder and path search lean on it. *)

type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Gvec.get: out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Gvec.set: out of bounds";
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

(* Dropping the backing array matters for correctness of long-lived
   processes, not just footprint: [size <- 0] alone would keep every old
   element reachable through [data] (the GC cannot collect them), so a
   reused builder would retain the previous load's strings and library
   cells for its whole lifetime. *)
let clear t =
  t.data <- [||];
  t.size <- 0

(* Monomorphic variants for the netlist builders: the backing stores are
   flat [float array] / [int array], so streaming a million fields never
   boxes an element and [to_array] is a single blit. *)

module Float = struct
  type t = { mutable data : float array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let length t = t.size

  let push t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let nd = Array.make (max 8 (2 * cap)) 0.0 in
      Array.blit t.data 0 nd 0 t.size;
      t.data <- nd
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let get t i =
    if i < 0 || i >= t.size then invalid_arg "Gvec.Float.get: out of bounds";
    t.data.(i)

  let set t i x =
    if i < 0 || i >= t.size then invalid_arg "Gvec.Float.set: out of bounds";
    t.data.(i) <- x

  let to_array t = Array.sub t.data 0 t.size

  (* Floats carry no pointers, so keeping the capacity is safe — the
     whole point of reuse is to skip the regrowth doublings. *)
  let clear t = t.size <- 0
end

module Int = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let length t = t.size

  let push t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let nd = Array.make (max 8 (2 * cap)) 0 in
      Array.blit t.data 0 nd 0 t.size;
      t.data <- nd
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let get t i =
    if i < 0 || i >= t.size then invalid_arg "Gvec.Int.get: out of bounds";
    t.data.(i)

  let set t i x =
    if i < 0 || i >= t.size then invalid_arg "Gvec.Int.set: out of bounds";
    t.data.(i) <- x

  let to_array t = Array.sub t.data 0 t.size

  let clear t = t.size <- 0
end
