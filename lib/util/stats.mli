(** Descriptive statistics over float arrays. Empty inputs yield 0 except
    where noted. *)

val sum : float array -> float

val mean : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two samples. *)
val variance : float array -> float

val stddev : float array -> float

(** [infinity] on empty input. *)
val min_elt : float array -> float

(** [neg_infinity] on empty input. *)
val max_elt : float array -> float

(** Linear-interpolated percentile, [p] in [0, 100]. Raises
    [Invalid_argument] on empty input. *)
val percentile : float array -> float -> float

val median : float array -> float

(** Geometric mean of positive values (tiny floor guards zeros). *)
val geomean : float array -> float

(** stddev / |mean|; 0 when the mean is 0. *)
val coeff_variation : float array -> float
