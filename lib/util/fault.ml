(** Fault injection for robustness tests.

    The pipeline's test-only hooks ([Rctree.Elmore.fault],
    [Gp.Wirelength.grad_fault]) are [float -> float] transforms applied
    to every computed value at their site. This module builds such
    transforms that corrupt a *window* of calls — NaN, infinity, or a
    huge-but-finite value — so tests and the CI robustness job can prove
    the divergence guards fire and recovery converges.

    Spec strings (the [FAULT_INJECT] env var / [--fault-inject] flag):

      site=kind@start          corrupt every call from [start] on
      site=kind@start+count    corrupt calls [start, start+count)

    with kind one of [nan], [inf], [-inf], [huge] (1e30) and sites
    resolved by the installer (the binary / test knows which hook each
    site name maps to). Multiple comma-separated clauses are allowed. *)

type kind = Nan | Pos_inf | Neg_inf | Huge

type spec = { kind : kind; start : int; count : int (* < 0 = unbounded *) }

let kind_to_string = function
  | Nan -> "nan"
  | Pos_inf -> "inf"
  | Neg_inf -> "-inf"
  | Huge -> "huge"

let kind_of_string = function
  | "nan" -> Some Nan
  | "inf" -> Some Pos_inf
  | "-inf" -> Some Neg_inf
  | "huge" -> Some Huge
  | _ -> None

let corrupt kind _v =
  match kind with
  | Nan -> Float.nan
  | Pos_inf -> Float.infinity
  | Neg_inf -> Float.neg_infinity
  | Huge -> 1e30

(** A stateful transform corrupting calls in the spec's window. The call
    counter is atomic: injection sites run inside parallel kernels, so
    under >1 domain the *set* of corrupted calls is deterministic in size
    but not in which array elements they land on — guards must catch the
    corruption wherever it lands. *)
let injector spec =
  let calls = Atomic.make 0 in
  fun v ->
    let n = Atomic.fetch_and_add calls 1 in
    if n >= spec.start && (spec.count < 0 || n < spec.start + spec.count) then
      corrupt spec.kind v
    else v

let spec_to_string s =
  if s.count < 0 then Printf.sprintf "%s@%d" (kind_to_string s.kind) s.start
  else Printf.sprintf "%s@%d+%d" (kind_to_string s.kind) s.start s.count

let parse_spec str =
  match String.index_opt str '@' with
  | None -> Error (Printf.sprintf "bad fault spec %S: expected kind@start[+count]" str)
  | Some i -> (
      let kind_s = String.sub str 0 i in
      let rest = String.sub str (i + 1) (String.length str - i - 1) in
      match kind_of_string kind_s with
      | None -> Error (Printf.sprintf "unknown fault kind %S (nan|inf|-inf|huge)" kind_s)
      | Some kind -> (
          let start_s, count_s =
            match String.index_opt rest '+' with
            | None -> (rest, None)
            | Some j ->
                ( String.sub rest 0 j,
                  Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
          in
          match (int_of_string_opt start_s, Option.map int_of_string_opt count_s) with
          | Some start, None when start >= 0 -> Ok { kind; start; count = -1 }
          | Some start, Some (Some count) when start >= 0 && count > 0 ->
              Ok { kind; start; count }
          | _ -> Error (Printf.sprintf "bad fault window in %S" str)))

(** Parse a comma-separated [site=spec] list. *)
let parse str =
  let clauses = String.split_on_char ',' str |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | clause :: rest -> (
        match String.index_opt clause '=' with
        | None -> Error (Printf.sprintf "bad fault clause %S: expected site=kind@start[+count]" clause)
        | Some i -> (
            let site = String.sub clause 0 i in
            let spec_s = String.sub clause (i + 1) (String.length clause - i - 1) in
            match parse_spec spec_s with
            | Error _ as e -> e
            | Ok spec -> go ((site, spec) :: acc) rest))
  in
  go [] clauses
