(** Named wall-clock accumulators for runtime breakdowns (paper Fig. 4). *)

type t

val create : unit -> t

(** Add [seconds] to the named accumulator (created on first use). *)
val add : t -> string -> float -> unit

(** Run the thunk, charging its wall-clock time to the name. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** Accumulated seconds (0 for unknown names). *)
val get : t -> string -> float

val total : t -> float

(** All (name, seconds), largest first. *)
val to_list : t -> (string * float) list

val reset : t -> unit
