(** Binary min-heap keyed by floats, carrying arbitrary payloads.

    Used for k-worst-path deviation search (keys are slack deficits) and
    Prim's algorithm in Steiner tree construction. For a max-heap behaviour
    insert negated keys. *)

type 'a t = {
  mutable keys : float array;
  mutable data : 'a array;
  mutable size : int;
}

let create () = { keys = [||]; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nk = Array.make ncap 0.0 and nd = Array.make ncap x in
    Array.blit t.keys 0 nk 0 t.size;
    Array.blit t.data 0 nd 0 t.size;
    t.keys <- nk;
    t.data <- nd
  end

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.keys.(p) > t.keys.(i) then begin
      swap t p i;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && t.keys.(l) < t.keys.(i) then l else i in
  let m = if r < t.size && t.keys.(r) < t.keys.(m) then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let push t key x =
  grow t x;
  t.keys.(t.size) <- key;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** Smallest key with its payload; raises [Not_found] when empty. *)
let pop t =
  if t.size = 0 then raise Not_found;
  let k = t.keys.(0) and x = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (k, x)

let peek_key t =
  if t.size = 0 then raise Not_found;
  t.keys.(0)
