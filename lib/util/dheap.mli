(** Binary min-heap keyed by floats, carrying arbitrary payloads.

    Used for k-worst-path deviation search (keys are negated arrival
    bounds) and Prim's algorithm. For max-heap behaviour insert negated
    keys. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit

(** Smallest key with its payload; raises [Not_found] when empty. *)
val pop : 'a t -> float * 'a

(** Smallest key without removing it; raises [Not_found] when empty. *)
val peek_key : 'a t -> float
