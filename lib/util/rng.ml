(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the project takes an explicit [Rng.t] so
    that benchmark generation and placement flows are reproducible
    run-to-run, independent of OCaml's global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 step: add the golden gamma, then finalize with the
   Stafford variant-13 mixer. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so Int64.to_int (63-bit native ints) stays positive. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** [float t bound] is uniform in [0, bound). *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

(** Uniform in [lo, hi). *)
let range t lo hi =
  assert (hi > lo);
  lo + int t (hi - lo)

let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli trial with probability [p]. *)
let bernoulli t p = float t 1.0 < p

(** Standard normal via Box-Muller. *)
let normal t =
  let u1 = Float.max 1e-300 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian t ~mean ~stddev = mean +. (stddev *. normal t)

(** Geometric-like long-tail sample in [lo, hi]: repeatedly doubles with
    probability [p_grow]; used for net fanout distributions. *)
let long_tail t ~lo ~hi ~p_grow =
  let rec grow v = if v < hi && bernoulli t p_grow then grow (v + 1 + int t (max 1 (v / 2))) else v in
  min hi (grow lo)

(** Random permutation index array of length [n] (Fisher-Yates). *)
let permutation t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** Split off an independent generator (SplitMix's split). *)
let split t = { state = next_int64 t }

(** Pick a uniformly random element of a non-empty array. *)
let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
