(** Growable array (OCaml 5.1 lacks Dynarray): amortised O(1) push,
    O(1) random access. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

(** Raises [Invalid_argument] when out of bounds. *)
val get : 'a t -> int -> 'a

(** Raises [Invalid_argument] when out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** Fresh array of the current contents. *)
val to_array : 'a t -> 'a array

val iter : ('a -> unit) -> 'a t -> unit

(** Reset to length 0 and release the backing array — old elements must
    become unreachable, not merely inaccessible, or a reused vector
    retains every previous element for the GC. *)
val clear : 'a t -> unit

(** Monomorphic float vector over a flat [float array] backing store:
    pushes never box and [to_array] is one blit. The netlist builders
    stream coordinate/offset/cap fields through these. *)
module Float : sig
  type t

  val create : unit -> t

  val length : t -> int

  val push : t -> float -> unit

  val get : t -> int -> float

  val set : t -> int -> float -> unit

  val to_array : t -> float array

  (** Reset to length 0; keeps capacity (floats hold no pointers). *)
  val clear : t -> unit
end

(** Monomorphic int vector over a flat [int array] backing store. *)
module Int : sig
  type t

  val create : unit -> t

  val length : t -> int

  val push : t -> int -> unit

  val get : t -> int -> int

  val set : t -> int -> int -> unit

  val to_array : t -> int array

  (** Reset to length 0; keeps capacity. *)
  val clear : t -> unit
end
