(** Growable array (OCaml 5.1 lacks Dynarray): amortised O(1) push,
    O(1) random access. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

(** Raises [Invalid_argument] when out of bounds. *)
val get : 'a t -> int -> 'a

(** Raises [Invalid_argument] when out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** Fresh array of the current contents. *)
val to_array : 'a t -> 'a array

val iter : ('a -> unit) -> 'a t -> unit

(** Reset to length 0 (keeps capacity). *)
val clear : 'a t -> unit
