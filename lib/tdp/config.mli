(** Configuration of the Efficient-TDP flow and its ablation variants
    (paper Sec. IV; deviations documented in DESIGN.md section 6b). *)

type loss_kind =
  | Quadratic (* paper Eq. 8: squared Euclidean distance *)
  | Linear (* ablation: Euclidean distance *)
  | Hpwl_like (* ablation: |dx| + |dy| *)

type extraction =
  | Endpoint_based of { k : int } (* report_timing_endpoint(n, k) — ours *)
  | Global_topn of { mult : int } (* report_timing(n * mult) *)

type t = {
  loss : loss_kind;
  extraction : extraction;
  beta : float; (* pin-attraction force as a fraction of the wirelength
                   gradient norm (scale-free version of the paper's beta) *)
  m : int; (* placement iterations between timing rounds *)
  w0 : float; (* initial pin-pair weight, Eq. 9 *)
  w1 : float; (* per-path weight increment scale, Eq. 9 *)
  timing_start : int; (* iteration at which timing optimisation begins *)
  extra_iters : int; (* timing-phase iteration budget *)
  stale_decay : float; (* per-round decay for pairs off the critical set
                          (1.0 = pure Eq. 9) *)
  cooldown_iters : int; (* final iterations annealing beta to ~0 so
                           wirelength recovers (0 disables) *)
}

val beta_for : loss_kind -> float

val default : t

(** Switch the loss kind, adjusting beta accordingly. *)
val with_loss : loss_kind -> t -> t

(** Range-check a configuration; [Error] carries the first problem. *)
val validate : t -> (unit, string) result

(** [validate], raising [Util.Errors.Error (Config_error _)]. *)
val validate_exn : t -> unit
