(** DREAMPlace 4.0 baseline: momentum-based net weighting from pin-level
    slacks (paper Sec. II-C / Eq. 5). Pin-level information cannot see
    path sharing — the limitation Sec. III-A motivates. *)

type t

val create :
  ?alpha:float -> ?momentum:float -> Netlist.Design.t -> topology:Sta.Delay.topology -> t

(** One timing round: re-time and refresh every net's weight in place.
    Returns (tns, wns). *)
val round : t -> float * float
