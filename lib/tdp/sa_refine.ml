(** Simulated-annealing timing refinement (in the spirit of Swartz &
    Sechen's TimberWolf-style timing-driven placement, paper ref [27]):
    equal-width cell swaps accepted by Metropolis on a combined
    TNS + wirelength cost, every candidate re-timed exactly with the
    incremental timer. Runs on a legal placement and preserves legality;
    the best state seen is restored at the end, so the result never
    regresses the start. *)

open Netlist

type stats = {
  moves : int;
  accepted : int;
  tns_before : float;
  tns_after : float;
  hpwl_before : float;
  hpwl_after : float;
}

let swap (d : Design.t) a b =
  let tx = d.x.{a} and ty = d.y.{a} in
  d.x.{a} <- d.x.{b};
  d.y.{a} <- d.y.{b};
  d.x.{b} <- tx;
  d.y.{b} <- ty

(* Combined cost: negative slack dominates; wirelength is a regulariser
   with weight chosen so a site of wire trades against ~1 ps of TNS. *)
let cost ~tns ~hpwl ~wl_weight = -.tns +. (wl_weight *. hpwl)

let run ?(seed = 1) ?(moves = 2000) ?(t0 = 15.0) ?(alpha = 0.998) ?(wl_weight = 0.2)
    ?(window = 12.0) (d : Design.t) =
  let rng = Util.Rng.create seed in
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  let tns_before = Sta.Timer.tns timer in
  let hpwl_before = Design.total_hpwl d in
  (* Candidate pool: width -> movable cells, so random picks always have
     a legal partner. *)
  let by_width = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let w = d.w.{id} in
      Hashtbl.replace by_width w (id :: (try Hashtbl.find by_width w with Not_found -> [])))
    (Design.movable_ids d);
  let pool_of id =
    Array.of_list (try Hashtbl.find by_width d.w.{id} with Not_found -> [ id ])
  in
  let pools =
    Hashtbl.fold (fun _ l acc -> if List.length l >= 2 then Array.of_list l :: acc else acc)
      by_width []
    |> Array.of_list
  in
  (* Cells on currently-failing worst paths: moves that matter. *)
  let critical_cells () =
    let failing = Sta.Timer.failing_endpoints timer in
    let tbl = Hashtbl.create 128 in
    List.iteri
      (fun i e ->
        if i < 40 then
          match
            Sta.Paths.worst_path (Sta.Timer.graph timer) (Sta.Timer.arrivals timer) ~endpoint:e
          with
          | None -> ()
          | Some p ->
              Array.iter
                (fun pid ->
                  let cid = d.pin_owner.(pid) in
                  if Design.is_movable d cid then Hashtbl.replace tbl cid ())
                p.Sta.Paths.pins)
      failing;
    Array.of_list (Hashtbl.fold (fun id () acc -> id :: acc) tbl [])
  in
  let crits = ref (critical_cells ()) in
  (* Partner for [a]: a same-width cell within [window]; a handful of
     random candidates is enough (locality keeps wirelength damage low). *)
  let nearby_partner a =
    let pool = pool_of a in
    let rec try_k k best =
      if k = 0 then best
      else begin
        let b = Util.Rng.choose rng pool in
        if b <> a && Float.abs (d.x.{b} -. d.x.{a}) +. Float.abs (d.y.{b} -. d.y.{a}) <= window
        then Some b
        else try_k (k - 1) best
      end
    in
    try_k 12 None
  in
  let accepted = ref 0 in
  let cur_cost = ref (cost ~tns:tns_before ~hpwl:hpwl_before ~wl_weight) in
  let best_cost = ref !cur_cost in
  let best_snap = ref (Design.snapshot d) in
  let temp = ref t0 in
  let actual_moves = ref 0 in
  if Array.length pools > 0 then
    for m = 1 to moves do
      incr actual_moves;
      if m mod 500 = 0 then crits := critical_cells ();
      let a =
        if Array.length !crits > 0 && Util.Rng.bernoulli rng 0.7 then Util.Rng.choose rng !crits
        else Util.Rng.choose rng (Util.Rng.choose rng pools)
      in
      let b = match nearby_partner a with Some b -> b | None -> a in
      if a <> b then begin
        swap d a b;
        Sta.Timer.update_moved timer ~cells:[ a; b ];
        let c = cost ~tns:(Sta.Timer.tns timer) ~hpwl:(Design.total_hpwl d) ~wl_weight in
        let delta = c -. !cur_cost in
        let accept =
          delta <= 0.0 || Util.Rng.float rng 1.0 < exp (-.delta /. Float.max 1e-9 !temp)
        in
        if accept then begin
          incr accepted;
          cur_cost := c;
          if c < !best_cost then begin
            best_cost := c;
            best_snap := Design.snapshot d
          end
        end
        else begin
          swap d a b;
          Sta.Timer.update_moved timer ~cells:[ a; b ]
        end
      end;
      temp := !temp *. alpha
    done;
  (* Restore the best state seen (never worse than the start). *)
  Design.restore d !best_snap;
  Sta.Timer.invalidate timer;
  Sta.Timer.update timer;
  {
    moves = !actual_moves;
    accepted = !accepted;
    tns_before;
    tns_after = Sta.Timer.tns timer;
    hpwl_before;
    hpwl_after = Design.total_hpwl d;
  }
