(** Pin-level timing weighting — the 'w/o Path Extraction' ablation: our
    pin-pair attraction machinery fed by per-pin slacks with DP4-style
    momentum, no critical path extraction (so path sharing is invisible). *)

type t

val create :
  ?alpha:float -> ?momentum:float -> Netlist.Design.t -> topology:Sta.Delay.topology -> t

(** One timing round; returns (tns, wns). *)
val round : t -> float * float

(** Unscaled pair gradient (flows normalise and scale it). *)
val add_grad_raw : t -> gx:float array -> gy:float array -> unit
