(** The timing-round driver: every m placement iterations, re-time the
    design, extract critical paths with the configured command and fold
    them into the pin-pair set (paper Sec. III-D workflow).

    Extraction commands:
    - [Endpoint_based {k}]: report_timing_endpoint(n, k) with n = number
      of failing endpoints (the paper's method);
    - [Global_topn {mult}]: report_timing(n * mult) — the OpenTimer-style
      ablation ('w/ rpt_timing(n*10)'). *)

type round_stats = {
  iter : int;
  tns : float;
  wns : float;
  num_failing : int;
  num_paths : int;
  num_pairs : int; (* size of P after the round *)
  sta_time : float;
  extract_time : float;
}

type t = {
  timer : Sta.Timer.t;
  attract : Pin_attract.t;
  config : Config.t;
  obs : Obs.Ctx.t;
  mutable relax : float; (* multiplies beta: ratchets down once timing is
                            met so wirelength can recover, back up if
                            violations return *)
  mutable rounds : round_stats list; (* newest first *)
}

let create ?(obs = Obs.Ctx.null) design ~(config : Config.t) ~topology =
  {
    timer = Sta.Timer.create ~topology ~obs design;
    attract = Pin_attract.create design ~loss:config.loss;
    config;
    obs;
    relax = 1.0;
    rounds = [];
  }

(** One timing round at placement iteration [iter]. Returns the stats.
    Emits [sta] / [extraction] spans and per-round counters (failing
    endpoints visited, paths extracted, pair-weight updates). *)
let round t ~iter =
  let cfg = t.config in
  let t0 = Unix.gettimeofday () in
  let tns, wns, failing =
    Obs.Ctx.span t.obs "sta" (fun () ->
        Sta.Timer.invalidate t.timer;
        Sta.Timer.update t.timer;
        (Sta.Timer.tns t.timer, Sta.Timer.wns t.timer, Sta.Timer.failing_endpoints t.timer))
  in
  let n = List.length failing in
  (* A poisoned timing graph (NaN/Inf arrival times, e.g. from corrupt
     wire parasitics) would push non-finite slack ratios into the pair
     weights and from there into the gradient. Skip the whole update for
     this round — the previous pair set keeps pulling, and the next clean
     STA round resumes normally. *)
  let timing_ok = Float.is_finite tns && Float.is_finite wns in
  if not timing_ok then begin
    Obs.Ctx.count t.obs "guard.nan_detected";
    Obs.Log.warn "[extraction] non-finite timing at iter %d (tns=%g wns=%g): round skipped"
      iter tns wns
  end;
  let t1 = Unix.gettimeofday () in
  let paths =
    Obs.Ctx.span t.obs "extraction" (fun () ->
        if n = 0 || not timing_ok then []
        else
          match cfg.extraction with
          | Config.Endpoint_based { k } -> Sta.Timer.report_timing_endpoint t.timer ~n ~k
          | Config.Global_topn { mult } -> Sta.Timer.report_timing t.timer ~n:(n * mult))
  in
  let t2 = Unix.gettimeofday () in
  if timing_ok then begin
    if n = 0 then t.relax <- Float.max 0.15 (t.relax *. 0.7)
    else t.relax <- Float.min 1.0 (t.relax *. 1.3)
  end;
  let graph = Sta.Timer.graph t.timer in
  let updates_before = Pin_attract.num_updates t.attract in
  if timing_ok then
    Pin_attract.update_from_paths t.attract graph ~w0:cfg.w0 ~w1:cfg.w1 ~wns
      ~stale_decay:cfg.stale_decay paths;
  let stats =
    {
      iter;
      tns;
      wns;
      num_failing = n;
      num_paths = List.length paths;
      num_pairs = Pin_attract.num_pairs t.attract;
      sta_time = t1 -. t0;
      extract_time = t2 -. t1;
    }
  in
  if Obs.Ctx.enabled t.obs then begin
    Obs.Ctx.count t.obs "extraction.rounds";
    Obs.Ctx.count t.obs ~by:(float_of_int n) "extraction.endpoints_visited";
    Obs.Ctx.count t.obs ~by:(float_of_int stats.num_paths) "extraction.paths";
    Obs.Ctx.count t.obs
      ~by:(float_of_int (Pin_attract.num_updates t.attract - updates_before))
      "extraction.pair_updates";
    Obs.Ctx.gauge t.obs "extraction.num_pairs" (float_of_int stats.num_pairs);
    Obs.Ctx.gauge t.obs "extraction.tns" tns;
    Obs.Ctx.gauge t.obs "extraction.wns" wns
  end;
  t.rounds <- stats :: t.rounds;
  stats

(** Raw (unscaled) gradient of the pin-pair loss; the flow normalises it
    against the placement gradient and applies the beta fraction. *)
let add_grad_raw t ~gx ~gy = Pin_attract.add_grad t.attract ~beta:1.0 ~gx ~gy

(** Current effective beta fraction (config beta times the relax ratchet). *)
let effective_beta t = t.config.Config.beta *. t.relax

let rounds t = List.rev t.rounds
