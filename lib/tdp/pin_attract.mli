(** Pin-to-pin attraction — the paper's fine-grained timing objective
    (Sec. III-A/C/D): a maintained set P of critical (driver, sink) pin
    pairs with Eq. 9 weights, and the distance loss Q (Eq. 8) with its
    gradient. Pairs shared by many violating paths accumulate weight —
    the path-sharing effect net weighting cannot see. *)

type t

val create : Netlist.Design.t -> loss:Config.loss_kind -> t

val num_pairs : t -> int

(** Cumulative count of Eq. 9 pair-weight writes (fresh insertions plus
    increments) across all rounds — an extraction-volume counter. *)
val num_updates : t -> int

(** Fold over the current pair set with its Eq. 9 weights (order
    unspecified); inspection hook for diagnostics and the oracle tests. *)
val fold_pairs :
  t -> init:'a -> f:('a -> pin_i:int -> pin_j:int -> weight:float -> 'a) -> 'a

val clear : t -> unit

(** Fold one extraction round into P: Eq. 9 along every path (w0 on first
    insertion, += w1 * slack/WNS per further path), then relax untouched
    pairs by [stale_decay] (held when [paths] is empty — a met design must
    not unravel). Only net arcs contribute. [wns] must be the current WNS. *)
val update_from_paths :
  t ->
  Sta.Graph.t ->
  w0:float ->
  w1:float ->
  wns:float ->
  stale_decay:float ->
  Sta.Paths.path list ->
  unit

(** Momentum-fold one pair's weight toward [w_hat] (pin-level ablation). *)
val update_pair_momentum :
  t -> pin_i:int -> pin_j:int -> w_hat:float -> momentum:float -> unit

(** Loss value (Eq. 10, before beta) under the current placement. *)
val loss_value : t -> float

(** Add beta * d(PP)/d(cell centre) into [gx]/[gy]; forces come in
    action-reaction pairs, so they sum to zero. *)
val add_grad : t -> beta:float -> gx:float array -> gy:float array -> unit
