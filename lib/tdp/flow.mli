(** End-to-end placement flows — every method of the paper's Tables II-IV
    plus the Table III ablation variants. All flows share the engine,
    initial placement, legalizer and evaluation; only the timing machinery
    differs. *)

type method_ =
  | Vanilla (* DREAMPlace: wirelength + density only *)
  | Dp4 (* DREAMPlace 4.0: momentum net weighting *)
  | Diff_tdp (* Guo & Lin: differentiable smooth-TNS gradient *)
  | Dist_tdp (* Lin et al.: expected-distribution anchors *)
  | Efficient of Config.t (* the paper *)
  | Dp4_in_ours (* ablation 'w/o path extraction' *)

val method_name : method_ -> string

type curve_point = { iter : int; hpwl : float; overflow : float; tns : float; wns : float }

type result = {
  name : string;
  design : string;
  metrics : Evalkit.Metrics.t; (* after legalization + detailed placement *)
  metrics_gp : Evalkit.Metrics.t; (* at the raw global-placement output *)
  runtime : float; (* whole-flow wall clock, seconds *)
  curve : curve_point list; (* timing-phase trajectory (Fig. 5) *)
  breakdown : (string * float) list; (* component seconds (Fig. 4) *)
  breakdown_self : (string * float) list; (* per-phase self seconds *)
  resource : Obs.Resource.delta; (* GC / peak-RSS telemetry for the flow *)
  extraction_rounds : Extraction.round_stats list; (* Efficient only *)
}

(** Timing topology used inside flows (evaluation always uses Steiner). *)
val flow_topology : Sta.Delay.topology

(** Best-checkpoint acceptance rule (pure; exposed for unit tests).
    [key] is the timing score (larger better). A strictly better key wins
    outright; within the eps band of [best_key], a smaller HPWL wins the
    tie — in which case the caller must keep [max best_key key] as the new
    best key so eps-sized regressions cannot ratchet the bar down.
    Non-finite [key]/[hpwl] always yield [Keep]. *)
type checkpoint_decision = New_best | Tie_better_hpwl | Keep

val checkpoint_decision :
  best_key:float -> best_hpwl:float -> key:float -> hpwl:float -> checkpoint_decision

(** Runs the flow in place: re-initialises the placement from [seed],
    optimises, keeps the best timing checkpoint, legalises (unless
    [legalize:false]) and scores with the common evaluation kit.

    [warm] (default false) runs the incremental re-placement schedule:
    the engine keeps the design's current (clamped) positions instead of
    the Gaussian spread and the timing phase shrinks to roughly a third
    of its cold length (timing_start 20) — the daemon's [replace] path
    after a small ECO delta, several times faster than a cold run while
    converging to comparable WNS/TNS from a near-converged start.

    [obs] is the observability context the whole pipeline reports
    through: a [flow] root span (with gp / sta / extraction descendants),
    counters and gauges. When omitted, a private context is created so
    [result.breakdown] stays populated; pass [Obs.Ctx.null] to switch
    observation off entirely (breakdown comes back empty). Placement
    results are bit-identical in every case — observability is
    observation-only.

    Raises [Util.Errors.Error]: [Invalid_design] if the input fails
    [Netlist.Design.validate] (also re-checked with [~placed:true] after
    legalization), [Config_error] for an out-of-range [Efficient] config,
    and [Diverged] if the placement engine exhausts its rollback budget. *)
val run :
  ?seed:int ->
  ?warm:bool ->
  ?legalize:bool ->
  ?topology:Sta.Delay.topology ->
  ?obs:Obs.Ctx.t ->
  ?heartbeat:Obs.Heartbeat.t ->
  method_ ->
  Netlist.Design.t ->
  result

(** Structured serialisations (the [place --report-json] / bench [--json]
    payloads). *)
val metrics_to_json : Evalkit.Metrics.t -> Obs.Json.t

val curve_point_to_json : curve_point -> Obs.Json.t

val round_stats_to_json : Extraction.round_stats -> Obs.Json.t

val result_to_json : result -> Obs.Json.t
