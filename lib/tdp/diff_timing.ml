(** Differentiable-timing baseline (Guo & Lin, DAC'22, re-implemented at
    the fidelity our substrate supports; see DESIGN.md).

    A smooth timer is differentiated end to end:
    - forward: arrivals propagate with a log-sum-exp smooth max
      (temperature [gamma_sm]) over the timing graph;
    - loss: smooth TNS = sum over endpoints of
      eta * softplus((arr - req) / eta);
    - backward: reverse-mode adjoints distribute each endpoint's loss
      sensitivity across in-arcs by their softmax shares, yielding
      dLoss/d(arc delay) for every arc;
    - chain rule through the *star* wire model maps arc-delay gradients to
      cell-position gradients (star keeps the delay a closed-form function
      of pin-to-pin distances).

    The flow adds [mult] * gradient to the placement objective. *)

open Netlist

type t = {
  design : Design.t;
  timer : Sta.Timer.t; (* star topology: matches the gradient model *)
  gamma_sm : float; (* smooth-max temperature, ps *)
  eta : float; (* softplus sharpness for negative slack, ps *)
  arr_sm : float array; (* smooth arrivals *)
  adjoint : float array; (* dLoss / d(arr) *)
  dl_darc : float array; (* dLoss / d(arc delay) *)
}

let create ?(gamma_sm = 8.0) ?(eta = 15.0) design =
  let timer = Sta.Timer.create ~topology:Sta.Delay.Star design in
  let graph = Sta.Timer.graph timer in
  {
    design;
    timer;
    gamma_sm;
    eta;
    arr_sm = Array.make (Sta.Graph.num_pins graph) 0.0;
    adjoint = Array.make (Sta.Graph.num_pins graph) 0.0;
    dl_darc = Array.make graph.Sta.Graph.num_arcs 0.0;
  }

let softplus x = if x > 30.0 then x else log (1.0 +. exp x)

let sigmoid x = if x > 30.0 then 1.0 else if x < -30.0 then 0.0 else 1.0 /. (1.0 +. exp (-.x))

(* Forward smooth arrivals over the (already delay-updated) graph. *)
let forward t =
  let graph = Sta.Timer.graph t.timer in
  let g = t.gamma_sm in
  let arr = t.arr_sm in
  Array.iter
    (fun p ->
      if graph.Sta.Graph.is_startpoint.(p) then arr.(p) <- graph.Sta.Graph.start_arrival.(p)
      else begin
        let lo = graph.Sta.Graph.in_start.(p) and hi = graph.Sta.Graph.in_start.(p + 1) in
        if lo = hi then arr.(p) <- Float.neg_infinity
        else begin
          (* log-sum-exp with max subtraction *)
          let m = ref Float.neg_infinity in
          for i = lo to hi - 1 do
            let a = graph.Sta.Graph.in_arc.(i) in
            let v = arr.(graph.Sta.Graph.arc_from.(a)) +. graph.Sta.Graph.arc_delay.(a) in
            if v > !m then m := v
          done;
          if Float.is_finite !m then begin
            let s = ref 0.0 in
            for i = lo to hi - 1 do
              let a = graph.Sta.Graph.in_arc.(i) in
              let v = arr.(graph.Sta.Graph.arc_from.(a)) +. graph.Sta.Graph.arc_delay.(a) in
              if Float.is_finite v then s := !s +. exp ((v -. !m) /. g)
            done;
            arr.(p) <- !m +. (g *. log !s)
          end
          else arr.(p) <- Float.neg_infinity
        end
      end)
    graph.Sta.Graph.topo

(* Backward adjoints; fills dl_darc. Returns the smooth TNS loss value. *)
let backward t =
  let graph = Sta.Timer.graph t.timer in
  let arr = t.arr_sm and adj = t.adjoint in
  Array.fill adj 0 (Array.length adj) 0.0;
  Array.fill t.dl_darc 0 (Array.length t.dl_darc) 0.0;
  let loss = ref 0.0 in
  Array.iter
    (fun e ->
      if Float.is_finite arr.(e) then begin
        let x = (arr.(e) -. graph.Sta.Graph.end_required.(e)) /. t.eta in
        loss := !loss +. (t.eta *. softplus x);
        adj.(e) <- adj.(e) +. sigmoid x
      end)
    graph.Sta.Graph.endpoints;
  (* Reverse topological order: distribute adjoints over in-arc shares. *)
  for i = Array.length graph.Sta.Graph.topo - 1 downto 0 do
    let p = graph.Sta.Graph.topo.(i) in
    let a_p = adj.(p) in
    if a_p <> 0.0 && not graph.Sta.Graph.is_startpoint.(p) then begin
      let lo = graph.Sta.Graph.in_start.(p) and hi = graph.Sta.Graph.in_start.(p + 1) in
      if lo < hi && Float.is_finite arr.(p) then
        for j = lo to hi - 1 do
          let a = graph.Sta.Graph.in_arc.(j) in
          let u = graph.Sta.Graph.arc_from.(a) in
          let v = arr.(u) +. graph.Sta.Graph.arc_delay.(a) in
          if Float.is_finite v then begin
            let share = exp ((v -. arr.(p)) /. t.gamma_sm) in
            t.dl_darc.(a) <- t.dl_darc.(a) +. (a_p *. share);
            adj.(u) <- adj.(u) +. (a_p *. share)
          end
        done
    end
  done;
  !loss

(** One timing round: re-time (star model), run the differentiable
    forward/backward. Returns (tns, wns) from the hard timer. *)
let round t =
  Sta.Timer.invalidate t.timer;
  Sta.Timer.update t.timer;
  forward t;
  let _loss = backward t in
  (Sta.Timer.tns t.timer, Sta.Timer.wns t.timer)

(** Chain rule through the star Elmore model: adds [mult] * dLoss/d(pos)
    into [gx]/[gy]. Must be called after [round] with an unchanged
    placement (the shares are evaluated at that placement; in the flow the
    gradient is reused between rounds, as Guo & Lin do between incremental
    updates). *)
let add_grad t ~mult ~gx ~gy =
  let d = t.design in
  let graph = Sta.Timer.graph t.timer in
  let r = d.r_per_unit and c = d.c_per_unit in
  (* Net arcs of one net form a contiguous block in arc order. *)
  for nid = 0 to Design.num_nets d - 1 do
    let nsinks = Design.net_num_sinks d nid in
    if nsinks > 0 then begin
      let driver = d.net_driver.(nid) in
      let drive_res, _, _ = Sta.Delay.driver_params d driver in
      let dx0 = Design.pin_x d driver and dy0 = Design.pin_y d driver in
      let dxs = Array.make nsinks 0.0 and dys = Array.make nsinks 0.0 in
      let lens = Array.make nsinks 0.0 in
      let gsum = ref 0.0 in
      let garc = Array.make nsinks 0.0 in
      for k = 0 to nsinks - 1 do
        let spid = Design.net_sink d nid k in
        dxs.(k) <- dx0 -. Design.pin_x d spid;
        dys.(k) <- dy0 -. Design.pin_y d spid;
        lens.(k) <- Float.abs dxs.(k) +. Float.abs dys.(k)
      done;
      (* dLoss/d(arc delay) for each sink arc. *)
      let lo = graph.Sta.Graph.out_start.(driver) in
      let hi = graph.Sta.Graph.out_start.(driver + 1) in
      for j = lo to hi - 1 do
        let a = graph.Sta.Graph.out_arc.(j) in
        if graph.Sta.Graph.arc_is_net.(a) then begin
          let k = graph.Sta.Graph.arc_sink_idx.(a) in
          garc.(k) <- t.dl_darc.(a);
          gsum := !gsum +. t.dl_darc.(a)
        end
      done;
      (* delay_k = R_drv * sum_j (c*L_j + C_j) + r*L_k*(c*L_k/2 + C_k) *)
      for k = 0 to nsinks - 1 do
        let spid = Design.net_sink d nid k in
        let sink_cap = d.pin_cap.{spid} in
        let dl_dlen =
          (drive_res *. c *. !gsum)
          +. (garc.(k) *. ((r *. c *. lens.(k)) +. (r *. sink_cap)))
        in
        if dl_dlen <> 0.0 then begin
          let sgn v = if v > 0.0 then 1.0 else if v < 0.0 then -1.0 else 0.0 in
          let gx_d = mult *. dl_dlen *. sgn dxs.(k) in
          let gy_d = mult *. dl_dlen *. sgn dys.(k) in
          let cd = d.pin_owner.(driver) and cs = d.pin_owner.(spid) in
          gx.(cd) <- gx.(cd) +. gx_d;
          gy.(cd) <- gy.(cd) +. gy_d;
          gx.(cs) <- gx.(cs) -. gx_d;
          gy.(cs) <- gy.(cs) -. gy_d
        end
      done
    end
  done
