(** Pin-to-pin attraction — the paper's fine-grained timing objective
    (Sec. III-A/C/D).

    The maintained set P maps critical pin pairs (net arcs: driver pin ->
    sink pin) to weights updated by Eq. 9:

      w_(i,j) = w0                       on first extraction, and
      w_(i,j) += w1 * (slack / WNS)      for every further critical path
                                          the pair appears on,

    so pairs shared by many violating paths accumulate weight — the
    path-sharing effect net weighting cannot see. The loss (Eq. 10) is
      PP(x, y) = sum_(i,j) w_(i,j) * Q(i, j)
    with Q the configured distance (quadratic by default, Eq. 8). *)

open Netlist

type pair = { pin_i : int; pin_j : int; mutable weight : float; mutable touched : bool }

type t = {
  design : Design.t;
  loss : Config.loss_kind;
  pairs : (int * int, pair) Hashtbl.t;
  mutable updates : int; (* cumulative Eq. 9 weight writes (fresh + increments) *)
}

let create design ~loss = { design; loss; pairs = Hashtbl.create 4096; updates = 0 }

let num_pairs t = Hashtbl.length t.pairs

let num_updates t = t.updates

(** Fold over the current pair set (order unspecified) — the inspection
    hook used by diagnostics and the Eq. 9 oracle tests. *)
let fold_pairs t ~init ~f =
  Hashtbl.fold (fun _ p acc -> f acc ~pin_i:p.pin_i ~pin_j:p.pin_j ~weight:p.weight) t.pairs init

let clear t = Hashtbl.reset t.pairs

let find_or_add t ~w0 i j =
  let key = (i, j) in
  match Hashtbl.find_opt t.pairs key with
  | Some p -> (p, false)
  | None ->
      let p = { pin_i = i; pin_j = j; weight = w0; touched = true } in
      Hashtbl.add t.pairs key p;
      (p, true)

(** Apply Eq. 9 for one extracted critical path. Only net arcs contribute
    (cell-arc pin pairs live on the same cell: their distance is fixed).
    [wns] must be the current worst negative slack (< 0). *)
let update_from_path t (graph : Sta.Graph.t) ~w0 ~w1 ~wns (path : Sta.Paths.path) =
  (* Both comparisons are false for NaN slack/wns, and wns < 0 excludes
     the wns = 0 boundary (no violation => no update, and no 0/0). The
     explicit finiteness check additionally rejects inf/-inf operands
     (ratio would be NaN or Inf) so a poisoned path can never write a
     non-finite weight. *)
  if path.slack < 0.0 && wns < 0.0 && Float.is_finite (path.slack /. wns) then begin
    let ratio = path.slack /. wns in
    Array.iter
      (fun a ->
        if graph.Sta.Graph.arc_is_net.(a) then begin
          let i = graph.Sta.Graph.arc_from.(a) and j = graph.Sta.Graph.arc_to.(a) in
          let p, fresh = find_or_add t ~w0 i j in
          p.touched <- true;
          t.updates <- t.updates + 1;
          if not fresh then p.weight <- p.weight +. (w1 *. ratio)
        end)
      path.arcs
  end

(** Fold one extraction round into P: apply Eq. 9 along every path, then
    relax pairs that no longer sit on any extracted critical path by
    [stale_decay] (1.0 disables the relaxation and recovers pure Eq. 9 —
    see DESIGN.md). *)
let update_from_paths t graph ~w0 ~w1 ~wns ~stale_decay paths =
  Hashtbl.iter (fun _ p -> p.touched <- false) t.pairs;
  List.iter (fun p -> update_from_path t graph ~w0 ~w1 ~wns p) paths;
  (* When every endpoint meets timing, hold all weights: decaying them lets
     the fixed wires stretch again and the flow enters a limit cycle. *)
  if stale_decay < 1.0 && paths <> [] then
    Hashtbl.iter (fun _ p -> if not p.touched then p.weight <- p.weight *. stale_decay) t.pairs

(** Momentum-fold a single pair's weight toward [w_hat] (used by the
    pin-level ablation; fresh pairs start at [w_hat]). *)
let update_pair_momentum t ~pin_i ~pin_j ~w_hat ~momentum =
  let key = (pin_i, pin_j) in
  match Hashtbl.find_opt t.pairs key with
  | Some p -> p.weight <- (momentum *. p.weight) +. ((1.0 -. momentum) *. w_hat)
  | None -> Hashtbl.add t.pairs key { pin_i; pin_j; weight = w_hat; touched = true }

(** Loss value under the current placement (Eq. 10, before beta). *)
let loss_value t =
  let d = t.design in
  Hashtbl.fold
    (fun _ p acc ->
      let dx = Design.pin_x d p.pin_i -. Design.pin_x d p.pin_j in
      let dy = Design.pin_y d p.pin_i -. Design.pin_y d p.pin_j in
      let q =
        match t.loss with
        | Config.Quadratic -> (dx *. dx) +. (dy *. dy)
        | Config.Linear -> Float.hypot dx dy
        | Config.Hpwl_like -> Float.abs dx +. Float.abs dy
      in
      acc +. (p.weight *. q))
    t.pairs 0.0

(* Gradient contribution of one pair into the given accumulators. *)
let add_pair_grad t ~beta ~gx ~gy (p : pair) =
  let d = t.design in
  let dx = Design.pin_x d p.pin_i -. Design.pin_x d p.pin_j in
  let dy = Design.pin_y d p.pin_i -. Design.pin_y d p.pin_j in
  let gx_i, gy_i =
    match t.loss with
    | Config.Quadratic -> (2.0 *. dx, 2.0 *. dy)
    | Config.Linear ->
        let dist = Float.max 1e-9 (Float.hypot dx dy) in
        (dx /. dist, dy /. dist)
    | Config.Hpwl_like ->
        let sgn v = if v > 0.0 then 1.0 else if v < 0.0 then -1.0 else 0.0 in
        (sgn dx, sgn dy)
  in
  let s = beta *. p.weight in
  let ci = d.pin_owner.(p.pin_i) and cj = d.pin_owner.(p.pin_j) in
  gx.(ci) <- gx.(ci) +. (s *. gx_i);
  gy.(ci) <- gy.(ci) +. (s *. gy_i);
  gx.(cj) <- gx.(cj) -. (s *. gx_i);
  gy.(cj) <- gy.(cj) -. (s *. gy_i)

(** Add beta * d(PP)/d(cell position) into [gx]/[gy] (cell-indexed).
    Pin offsets are rigid, so pin gradients add directly to their cells.
    Pairs share cells, so the parallel path accumulates into per-domain
    buffers merged in chunk order (see [Util.Parallel]). *)
let add_grad t ~beta ~gx ~gy =
  let pairs = Array.of_seq (Hashtbl.to_seq_values t.pairs) in
  let npairs = Array.length pairs in
  let nchunks = Util.Parallel.chunk_count ~n:npairs in
  if nchunks = 1 then Array.iter (fun p -> add_pair_grad t ~beta ~gx ~gy p) pairs
  else begin
    let nc = Design.num_cells t.design in
    let bufs =
      Util.Parallel.iter_chunks_scratch ~grain:256 ~name:"pp.grad" ~n:npairs
        ~scratch:(fun () -> (Array.make nc 0.0, Array.make nc 0.0))
        (fun ~scratch:(bx, by) ~chunk:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            add_pair_grad t ~beta ~gx:bx ~gy:by pairs.(i)
          done)
    in
    Util.Parallel.for_ ~name:"pp.grad.merge" nc (fun c ->
        Array.iter
          (fun (bx, by) ->
            gx.(c) <- gx.(c) +. bx.(c);
            gy.(c) <- gy.(c) +. by.(c))
          bufs)
  end
