(** The timing-round driver: every m placement iterations, re-time,
    extract critical paths with the configured command, fold them into the
    pin-pair set (paper Sec. III-D), and ratchet the attraction strength
    down when timing is met. *)

type round_stats = {
  iter : int;
  tns : float;
  wns : float;
  num_failing : int;
  num_paths : int;
  num_pairs : int; (* |P| after the round *)
  sta_time : float;
  extract_time : float;
}

type t

(** [obs] is shared with the internal timer: each round emits [sta] and
    [extraction] spans plus counters (rounds, endpoints visited, paths
    extracted, pair-weight updates) and tns/wns/|P| gauges. *)
val create :
  ?obs:Obs.Ctx.t -> Netlist.Design.t -> config:Config.t -> topology:Sta.Delay.topology -> t

(** One timing round at placement iteration [iter]. *)
val round : t -> iter:int -> round_stats

(** Unscaled pin-pair gradient; the flow normalises it against the
    wirelength gradient and applies {!effective_beta}. *)
val add_grad_raw : t -> gx:float array -> gy:float array -> unit

(** Config beta times the relax ratchet (drops toward 0.15x when every
    endpoint meets timing, recovers when violations return). *)
val effective_beta : t -> float

(** Chronological round statistics. *)
val rounds : t -> round_stats list
