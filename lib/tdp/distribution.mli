(** Distribution-TDP baseline (Lin et al., ISPD'24), approximated as
    expected-position anchors: each cell on a failing endpoint's worst
    path is pulled toward the midpoint of its path neighbours with a
    criticality-weighted spring (see DESIGN.md for the substitution). *)

type t

val create : Netlist.Design.t -> topology:Sta.Delay.topology -> t

(** One timing round: re-time, rebuild the anchor set. Returns (tns, wns). *)
val round : t -> float * float

(** Spring gradient toward the anchors, scaled by [mult]. *)
val add_grad : t -> mult:float -> gx:float array -> gy:float array -> unit
