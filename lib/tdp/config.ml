(** Configuration of the Efficient-TDP flow and its ablation variants
    (paper Sec. IV: beta = 2.5e-5, m = 15, w0 = 10, w1 = 0.2, timing
    optimisation from iteration 500).

    Units note: the paper's beta is calibrated to DBU-scale coordinates;
    our coordinates are in row heights (sites), so the default betas below
    are chosen to give the pin-attraction gradient the same relative
    magnitude against the wirelength gradient as in the paper. Each loss
    kind has its own scale because the losses have different units
    (length^2 vs length vs length). *)

type loss_kind =
  | Quadratic (* paper Eq. 8: squared Euclidean distance *)
  | Linear (* ablation: Euclidean distance *)
  | Hpwl_like (* ablation: |dx| + |dy| *)

type extraction =
  | Endpoint_based of { k : int } (* report_timing_endpoint(n, k) — ours *)
  | Global_topn of { mult : int } (* report_timing(n * mult) — OpenTimer style *)

type t = {
  loss : loss_kind;
  extraction : extraction;
  beta : float; (* pin-attraction penalty multiplier *)
  m : int; (* placement iterations between timing rounds *)
  w0 : float; (* initial pin-pair weight, Eq. 9 *)
  w1 : float; (* per-path weight increment scale, Eq. 9 *)
  timing_start : int; (* iteration at which timing optimisation begins *)
  extra_iters : int; (* iterations granted beyond the vanilla stop *)
  stale_decay : float; (* per-round weight decay for pairs absent from the
                          current critical set (1.0 = pure Eq. 9) *)
  cooldown_iters : int; (* final iterations over which beta anneals to ~0
                           so wirelength recovers; the best-TNS checkpoint
                           protects the timing result (0 disables) *)
}

(* beta is the pin-attraction force as a fraction of the placement
   (wirelength + density) gradient norm — scale-free across designs. The
   loss kind changes the force *shape* over the pair set, not its overall
   magnitude, so one value serves all three. *)
let beta_for = function Quadratic | Linear | Hpwl_like -> 0.75

let default =
  {
    loss = Quadratic;
    extraction = Endpoint_based { k = 1 };
    beta = beta_for Quadratic;
    m = 10;
    w0 = 10.0;
    w1 = 2.0; (* the paper's 0.2 rescaled: our slack ratios are spread
                 across fewer, shorter paths, so increments are larger *)
    timing_start = 300;
    extra_iters = 450;
    stale_decay = 0.90;
    cooldown_iters = 0; (* annealing measurably helps nothing beyond the
                           best-TNS checkpoint; kept available for study *)
  }

let with_loss loss t = { t with loss; beta = beta_for loss }
