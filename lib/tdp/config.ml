(** Configuration of the Efficient-TDP flow and its ablation variants
    (paper Sec. IV: beta = 2.5e-5, m = 15, w0 = 10, w1 = 0.2, timing
    optimisation from iteration 500).

    Units note: the paper's beta is calibrated to DBU-scale coordinates;
    our coordinates are in row heights (sites), so the default betas below
    are chosen to give the pin-attraction gradient the same relative
    magnitude against the wirelength gradient as in the paper. Each loss
    kind has its own scale because the losses have different units
    (length^2 vs length vs length). *)

type loss_kind =
  | Quadratic (* paper Eq. 8: squared Euclidean distance *)
  | Linear (* ablation: Euclidean distance *)
  | Hpwl_like (* ablation: |dx| + |dy| *)

type extraction =
  | Endpoint_based of { k : int } (* report_timing_endpoint(n, k) — ours *)
  | Global_topn of { mult : int } (* report_timing(n * mult) — OpenTimer style *)

type t = {
  loss : loss_kind;
  extraction : extraction;
  beta : float; (* pin-attraction penalty multiplier *)
  m : int; (* placement iterations between timing rounds *)
  w0 : float; (* initial pin-pair weight, Eq. 9 *)
  w1 : float; (* per-path weight increment scale, Eq. 9 *)
  timing_start : int; (* iteration at which timing optimisation begins *)
  extra_iters : int; (* iterations granted beyond the vanilla stop *)
  stale_decay : float; (* per-round weight decay for pairs absent from the
                          current critical set (1.0 = pure Eq. 9) *)
  cooldown_iters : int; (* final iterations over which beta anneals to ~0
                           so wirelength recovers; the best-TNS checkpoint
                           protects the timing result (0 disables) *)
}

(* beta is the pin-attraction force as a fraction of the placement
   (wirelength + density) gradient norm — scale-free across designs. The
   loss kind changes the force *shape* over the pair set, not its overall
   magnitude, so one value serves all three. *)
let beta_for = function Quadratic | Linear | Hpwl_like -> 0.75

let default =
  {
    loss = Quadratic;
    extraction = Endpoint_based { k = 1 };
    beta = beta_for Quadratic;
    m = 10;
    w0 = 10.0;
    w1 = 2.0; (* the paper's 0.2 rescaled: our slack ratios are spread
                 across fewer, shorter paths, so increments are larger *)
    timing_start = 300;
    extra_iters = 450;
    stale_decay = 0.90;
    cooldown_iters = 0; (* annealing measurably helps nothing beyond the
                           best-TNS checkpoint; kept available for study *)
  }

let with_loss loss t = { t with loss; beta = beta_for loss }

(** Range-check a configuration; returns the first problem found. *)
let validate t =
  let fin v = Float.is_finite v in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (fin t.beta) || t.beta < 0.0 then err "beta %g must be finite and >= 0" t.beta
  else if t.m <= 0 then err "m (round cadence) %d must be positive" t.m
  else if not (fin t.w0) || t.w0 < 0.0 then err "w0 %g must be finite and >= 0" t.w0
  else if not (fin t.w1) || t.w1 < 0.0 then err "w1 %g must be finite and >= 0" t.w1
  else if t.timing_start < 0 then err "timing_start %d must be >= 0" t.timing_start
  else if t.extra_iters < 0 then err "extra_iters %d must be >= 0" t.extra_iters
  else if not (fin t.stale_decay) || t.stale_decay <= 0.0 || t.stale_decay > 1.0 then
    err "stale_decay %g must be in (0, 1]" t.stale_decay
  else if t.cooldown_iters < 0 then err "cooldown_iters %d must be >= 0" t.cooldown_iters
  else
    match t.extraction with
    | Endpoint_based { k } when k <= 0 -> err "paths-per-endpoint k %d must be positive" k
    | Global_topn { mult } when mult <= 0 -> err "report_timing multiplier %d must be positive" mult
    | Endpoint_based _ | Global_topn _ -> Ok ()

(** [validate], raising [Util.Errors.Error (Config_error _)]. *)
let validate_exn t =
  match validate t with Ok () -> () | Error detail -> Util.Errors.config_error ~what:"tdp-config" detail
