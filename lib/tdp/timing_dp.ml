(** Timing-aware detailed placement — the "incremental timing-driven
    placement" setting of the ICCAD2015 contest, built on the timer's
    incremental update.

    After legalization, cells on failing paths are tried at swap positions
    with nearby same-width cells; a swap is kept when the incrementally
    re-timed TNS improves (ties broken by HPWL). Legality is preserved by
    only exchanging equal-width cells. *)

open Netlist

type stats = {
  candidates : int;
  accepted : int;
  tns_before : float;
  tns_after : float;
}

(* Cells owning pins on the worst paths of failing endpoints. *)
let critical_cells (d : Design.t) timer ~max_endpoints =
  let failing = Sta.Timer.failing_endpoints timer in
  let tbl = Hashtbl.create 256 in
  List.iteri
    (fun i e ->
      if i < max_endpoints then
        match
          Sta.Paths.worst_path (Sta.Timer.graph timer) (Sta.Timer.arrivals timer) ~endpoint:e
        with
        | None -> ()
        | Some p ->
            Array.iter
              (fun pid ->
                let cid = d.pin_owner.(pid) in
                if Design.is_movable d cid then Hashtbl.replace tbl cid ())
              p.Sta.Paths.pins)
    failing;
  Hashtbl.fold (fun id () acc -> id :: acc) tbl []

let swap (d : Design.t) a b =
  let tx = d.x.{a} and ty = d.y.{a} in
  d.x.{a} <- d.x.{b};
  d.y.{a} <- d.y.{b};
  d.x.{b} <- tx;
  d.y.{b} <- ty

(** Run on a legal placement. [max_endpoints] bounds the critical set,
    [window] the neighbour search distance (in sites). Returns stats; the
    placement is left at the improved (still legal) state. *)
let run ?(max_endpoints = 50) ?(window = 8.0) (d : Design.t) =
  let timer = Sta.Timer.create ~topology:Sta.Delay.Steiner_tree d in
  Sta.Timer.update timer;
  let tns_before = Sta.Timer.tns timer in
  let crits = critical_cells d timer ~max_endpoints in
  (* Same-width swap partners near each critical cell. *)
  let movables = Array.of_list (Design.movable_ids d) in
  let candidates = ref 0 and accepted = ref 0 in
  List.iter
    (fun a ->
      let best_tns = ref (Sta.Timer.tns timer) in
      let best_partner = ref None in
      Array.iter
        (fun b ->
          if
            b <> a
            && d.w.{b} = d.w.{a}
            && Float.abs (d.x.{b} -. d.x.{a}) +. Float.abs (d.y.{b} -. d.y.{a}) <= window
          then begin
            incr candidates;
            swap d a b;
            Sta.Timer.update_moved timer ~cells:[ a; b ];
            let tns = Sta.Timer.tns timer in
            if tns > !best_tns +. 1e-9 then begin
              best_tns := tns;
              best_partner := Some b
            end;
            (* restore and re-time back *)
            swap d a b;
            Sta.Timer.update_moved timer ~cells:[ a; b ]
          end)
        movables;
      match !best_partner with
      | Some b ->
          swap d a b;
          Sta.Timer.update_moved timer ~cells:[ a; b ];
          incr accepted
      | None -> ())
    crits;
  let tns_after = Sta.Timer.tns timer in
  { candidates = !candidates; accepted = !accepted; tns_before; tns_after }
