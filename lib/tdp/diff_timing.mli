(** Differentiable-timing baseline (Guo & Lin, DAC'22; fidelity notes in
    DESIGN.md): a smooth timer — log-sum-exp arrival propagation, softplus
    negative-slack loss — differentiated end to end by reverse-mode
    adjoints, chained through the star wire model to cell positions. *)

type t = {
  design : Netlist.Design.t;
  timer : Sta.Timer.t; (* star topology, matching the gradient model *)
  gamma_sm : float; (* smooth-max temperature, ps *)
  eta : float; (* softplus sharpness, ps *)
  arr_sm : float array; (* smooth arrivals (exposed for tests) *)
  adjoint : float array;
  dl_darc : float array;
}

val create : ?gamma_sm:float -> ?eta:float -> Netlist.Design.t -> t

(** One timing round: re-time (star model) and run the differentiable
    forward/backward passes. Returns (tns, wns) from the hard timer. *)
val round : t -> float * float

(** Add [mult] * dLoss/d(position); valid for the placement [round] last
    saw (flows reuse it between rounds). *)
val add_grad : t -> mult:float -> gx:float array -> gy:float array -> unit
