(** Pin-level timing weighting — the paper's 'w/o Path Extraction'
    ablation (Table III): keep our framework's pin-pair attraction
    machinery, but feed it *pin-level* slack information with DREAMPlace
    4.0's momentum scheme instead of extracted critical paths.

    Every net arc whose sink pin has negative slack becomes a weighted
    pair; its target weight follows the sink pin's criticality and is
    folded in with momentum. Because slacks are per-pin minima over all
    paths, path sharing is invisible — two violating paths through the
    same pair contribute no more than one (the effect Sec. III-A argues
    costs WNS). *)

open Netlist

type t = {
  design : Design.t;
  timer : Sta.Timer.t;
  attract : Pin_attract.t;
  alpha : float;
  momentum : float;
}

let create ?(alpha = 8.0) ?(momentum = 0.5) design ~topology =
  {
    design;
    timer = Sta.Timer.create ~topology design;
    attract = Pin_attract.create design ~loss:Config.Quadratic;
    alpha;
    momentum;
  }

(** One timing round: re-time; for each net arc whose sink fails, update
    the pair weight toward 1 + alpha * crit with momentum. Returns
    (tns, wns). *)
let round t =
  Sta.Timer.invalidate t.timer;
  Sta.Timer.update t.timer;
  let tns = Sta.Timer.tns t.timer and wns = Sta.Timer.wns t.timer in
  if wns < 0.0 then begin
    let graph = Sta.Timer.graph t.timer in
    let slack = Sta.Timer.slacks t.timer in
    for a = 0 to graph.Sta.Graph.num_arcs - 1 do
      if graph.Sta.Graph.arc_is_net.(a) then begin
        let j = graph.Sta.Graph.arc_to.(a) in
        if Float.is_finite slack.(j) && slack.(j) < 0.0 then begin
          let crit = Float.min 1.0 (slack.(j) /. wns) in
          let w_hat = 1.0 +. (t.alpha *. crit) in
          Pin_attract.update_pair_momentum t.attract
            ~pin_i:graph.Sta.Graph.arc_from.(a) ~pin_j:j ~w_hat ~momentum:t.momentum
        end
      end
    done
  end;
  (tns, wns)

let add_grad_raw t ~gx ~gy = Pin_attract.add_grad t.attract ~beta:1.0 ~gx ~gy
