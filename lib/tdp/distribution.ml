(** Distribution-TDP baseline (Lin, Chang & Huang, ISPD'24), approximated
    as described in DESIGN.md: each cell on a failing endpoint's worst
    path is given an *expected range* — here collapsed to the midpoint of
    its path neighbours — and a spring force (weighted by the path's
    criticality) pulls it toward that range. This captures the method's
    essence (placement targets derived from where timing expects cells to
    sit) without its full mathematical-programming machinery. *)

open Netlist

type anchor = { cell : int; tx : float; ty : float; strength : float }

type t = {
  design : Design.t;
  timer : Sta.Timer.t;
  mutable anchors : anchor list;
}

let create design ~topology = { design; timer = Sta.Timer.create ~topology design; anchors = [] }

(** One timing round: re-time, extract each failing endpoint's worst path,
    derive anchors. Returns (tns, wns). *)
let round t =
  Sta.Timer.invalidate t.timer;
  Sta.Timer.update t.timer;
  let tns = Sta.Timer.tns t.timer and wns = Sta.Timer.wns t.timer in
  let d = t.design in
  t.anchors <- [];
  if wns < 0.0 then begin
    let failing = Sta.Timer.failing_endpoints t.timer in
    let n = List.length failing in
    let paths = Sta.Timer.report_timing_endpoint t.timer ~n ~k:1 in
    List.iter
      (fun (p : Sta.Paths.path) ->
        if p.slack < 0.0 then begin
          let crit = p.slack /. wns in
          let np = Array.length p.pins in
          for i = 1 to np - 2 do
            let pid = p.pins.(i) in
            let cid = d.pin_owner.(pid) in
            if Design.is_movable d cid then begin
              let prev = p.pins.(i - 1) and next = p.pins.(i + 1) in
              let tx =
                ((Design.pin_x d prev +. Design.pin_x d next) /. 2.0) -. d.pin_off_x.{pid}
              in
              let ty =
                ((Design.pin_y d prev +. Design.pin_y d next) /. 2.0) -. d.pin_off_y.{pid}
              in
              t.anchors <- { cell = cid; tx; ty; strength = crit } :: t.anchors
            end
          done
        end)
      paths
  end;
  (tns, wns)

(** Spring gradient toward the anchors: d/dpos of
    strength/2 * ||pos - target||^2, scaled by [mult]. *)
let add_grad t ~mult ~gx ~gy =
  let d = t.design in
  List.iter
    (fun a ->
      let s = mult *. a.strength in
      gx.(a.cell) <- gx.(a.cell) +. (s *. (d.x.{a.cell} -. a.tx));
      gy.(a.cell) <- gy.(a.cell) +. (s *. (d.y.{a.cell} -. a.ty)))
    t.anchors
