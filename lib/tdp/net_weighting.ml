(** DREAMPlace 4.0 baseline: momentum-based net weighting.

    Every timing round, each net's criticality is the (normalised) worst
    negative slack over its pins; a candidate weight grows with
    criticality and is folded into the running weight with momentum:

      crit_e = clamp(-worst_pin_slack_e / |WNS|, 0, 1)
      w_hat  = 1 + alpha * crit_e
      w_e   <- momentum * w_e + (1 - momentum) * w_hat

    The weights multiply the nets' WA wirelength terms — the net weighting
    scheme of Eq. 5 in the paper. This is pin-level information: it cannot
    see path sharing, the limitation Sec. III-A motivates. *)

open Netlist

type t = {
  timer : Sta.Timer.t;
  design : Design.t;
  alpha : float;
  momentum : float;
  mutable rounds : int;
}

let create ?(alpha = 8.0) ?(momentum = 0.5) design ~topology =
  { timer = Sta.Timer.create ~topology design; design; alpha; momentum; rounds = 0 }

(** One timing round: re-time, refresh all net weights in place.
    Returns (tns, wns). *)
let round t =
  Sta.Timer.invalidate t.timer;
  Sta.Timer.update t.timer;
  let tns = Sta.Timer.tns t.timer and wns = Sta.Timer.wns t.timer in
  let slack = Sta.Timer.slacks t.timer in
  let d = t.design in
  if wns < 0.0 then
    for nid = 0 to Design.num_nets d - 1 do
      let worst = ref Float.infinity in
      Design.iter_net_pins d nid (fun pid ->
          if slack.(pid) < !worst then worst := slack.(pid));
      let crit =
        if Float.is_finite !worst && !worst < 0.0 then Float.min 1.0 (!worst /. wns) else 0.0
      in
      let w_hat = 1.0 +. (t.alpha *. crit) in
      d.net_weight.{nid} <- (t.momentum *. d.net_weight.{nid}) +. ((1.0 -. t.momentum) *. w_hat)
    done;
  t.rounds <- t.rounds + 1;
  (tns, wns)
