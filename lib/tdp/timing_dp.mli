(** Timing-aware detailed placement on a legal placement: equal-width swap
    moves around critical cells, accepted when the incrementally re-timed
    TNS improves. Legality is preserved by construction. *)

type stats = {
  candidates : int;
  accepted : int;
  tns_before : float;
  tns_after : float;
}

(** [run d] mutates the placement; TNS never degrades. [max_endpoints]
    bounds the critical path set, [window] the swap search radius. *)
val run : ?max_endpoints:int -> ?window:float -> Netlist.Design.t -> stats
