(** Simulated-annealing timing refinement (Swartz-Sechen spirit):
    equal-width swaps accepted by Metropolis on a TNS + wirelength cost,
    re-timed per move with the incremental timer. Runs on a legal
    placement, preserves legality, and restores the best state seen —
    the result never regresses the start. *)

type stats = {
  moves : int;
  accepted : int;
  tns_before : float;
  tns_after : float;
  hpwl_before : float;
  hpwl_after : float;
}

val run :
  ?seed:int ->
  ?moves:int ->
  ?t0:float ->
  ?alpha:float ->
  ?wl_weight:float ->
  ?window:float ->
  Netlist.Design.t ->
  stats
