(** End-to-end placement flows — every method compared in the paper's
    Tables II-IV, plus the ablation variants of Table III.

    All flows share the same analytical placement engine, initial
    placement (same seed), legalizer and evaluation; only the timing
    machinery differs:

    - [Vanilla]      — DREAMPlace: wirelength + density only.
    - [Dp4]          — DREAMPlace 4.0: momentum net weighting.
    - [Diff_tdp]     — Guo & Lin: differentiable smooth-TNS gradient.
    - [Dist_tdp]     — Lin et al.: expected-distribution anchors.
    - [Efficient c]  — the paper: pin-to-pin attraction via critical path
                       extraction, configured by [c] (loss kind,
                       extraction command, Eq. 9 weights). Table III rows
                       are [Efficient] with modified configs, except
                       'w/o path extraction' which is [Dp4_in_ours]. *)

open Netlist

type method_ =
  | Vanilla
  | Dp4
  | Diff_tdp
  | Dist_tdp
  | Efficient of Config.t
  | Dp4_in_ours (* ablation 'w/o Path Extraction': momentum pin-level
                   weighting inside our timing-phase schedule *)

let method_name = function
  | Vanilla -> "DREAMPlace"
  | Dp4 -> "DREAMPlace-4.0"
  | Diff_tdp -> "Differentiable-TDP"
  | Dist_tdp -> "Distribution-TDP"
  | Efficient _ -> "Efficient-TDP"
  | Dp4_in_ours -> "w/o-path-extraction"

type curve_point = { iter : int; hpwl : float; overflow : float; tns : float; wns : float }

type result = {
  name : string;
  design : string;
  metrics : Evalkit.Metrics.t; (* after legalization + detailed placement *)
  metrics_gp : Evalkit.Metrics.t; (* at the raw global-placement output *)
  runtime : float; (* whole flow wall-clock, seconds *)
  curve : curve_point list; (* timing-phase trajectory (Fig. 5) *)
  breakdown : (string * float) list; (* component total seconds (Fig. 4) *)
  breakdown_self : (string * float) list; (* component self seconds *)
  resource : Obs.Resource.delta; (* GC / peak-RSS accounting for the run *)
  extraction_rounds : Extraction.round_stats list; (* Efficient only *)
}

(** Timing analysis topology used *inside* flows (evaluation always uses
    Steiner): Star keeps per-round cost low, Steiner is more accurate.
    The paper's timer (OpenTimer + FLUTE) corresponds to Steiner. *)
let flow_topology = Sta.Delay.Steiner_tree

(* Scale an auxiliary gradient so its L1 norm is [mult] times the
   placement gradient's, then add it. Keeps every timing force a fixed
   fraction of the wirelength+density force regardless of design scale —
   the role of the paper's beta, made scale-free (DESIGN.md). *)
let add_normalized ~obs ~mult ~wl_norm ~gx ~gy fill =
  let n = Array.length gx in
  let tx = Array.make n 0.0 and ty = Array.make n 0.0 in
  fill ~gx:tx ~gy:ty;
  let aux = ref 0.0 in
  for i = 0 to n - 1 do
    aux := !aux +. Float.abs tx.(i) +. Float.abs ty.(i)
  done;
  (* A poisoned timing force (NaN/Inf in the auxiliary gradient, or a
     non-finite wirelength norm) would infect the whole iterate through
     the += below; drop the force for this iteration instead and let the
     placement gradient stand alone. *)
  if not (Float.is_finite !aux && Float.is_finite wl_norm) then
    Obs.Ctx.count obs "guard.nan_detected"
  else if !aux > 1e-30 then begin
    let s = mult *. wl_norm /. !aux in
    for i = 0 to n - 1 do
      gx.(i) <- gx.(i) +. (s *. tx.(i));
      gy.(i) <- gy.(i) +. (s *. ty.(i))
    done
  end

(* ---- best-checkpoint acceptance (pure; exposed for tests) ----
   [key] is the timing score (TNS + 0.1*WNS, larger better). A strictly
   better key always wins; within the eps band of the best key seen, a
   smaller HPWL wins the tie — but the recorded best key must never
   ratchet *down*: accepting a key eps below the current best and then
   another eps below that would let chained eps-sized regressions walk
   the "best" checkpoint arbitrarily far from the true maximum. Non-finite
   metrics (a poisoned timing round) are never checkpointed. *)
type checkpoint_decision = New_best | Tie_better_hpwl | Keep

let checkpoint_decision ~best_key ~best_hpwl ~key ~hpwl =
  if not (Float.is_finite key && Float.is_finite hpwl) then Keep
  else if not (Float.is_finite best_key) then New_best (* first checkpoint *)
  else begin
    let eps = 1e-9 +. (1e-4 *. Float.abs best_key) in
    if key > best_key +. eps then New_best
    else if key >= best_key -. eps && hpwl < best_hpwl then Tie_better_hpwl
    else Keep
  end

let base_gp_params ~seed =
  { Gp.Globalplace.default_params with seed; min_iters = 300; max_iters = 1000 }

(* Warm (incremental) re-placement: the design already holds a converged
   legalized solution plus a small ECO delta, so the engine resumes from
   it instead of re-spreading, and the schedule shrinks — the density is
   near target from iteration 0 and the timing machinery only needs to
   repair the delta's neighbourhood, not rebuild the placement. *)
let warm_gp_params ~seed =
  { Gp.Globalplace.default_params with seed; warm_start = true; min_iters = 60; max_iters = 400 }

let warm_config (cfg : Config.t) =
  { cfg with timing_start = 20; extra_iters = max 60 (cfg.extra_iters / 3) }

let timing_gp_params ~warm ~seed (cfg : Config.t) =
  {
    (if warm then warm_gp_params ~seed else base_gp_params ~seed) with
    timing_start = cfg.timing_start;
    round_every = cfg.m;
    min_iters = cfg.timing_start + cfg.extra_iters;
    max_iters = cfg.timing_start + cfg.extra_iters;
  }

let run ?(seed = 1) ?(warm = false) ?(legalize = true) ?(topology = flow_topology) ?obs
    ?heartbeat (meth : method_) (d : Design.t) =
  (* Default: a private context so [result.breakdown] is populated even
     when the caller doesn't care about tracing. An explicitly disabled
     context ([Obs.Ctx.null]) turns all observation off — breakdown comes
     back empty, placement results are identical either way. *)
  let obs = match obs with Some c -> c | None -> Obs.Ctx.create () in
  (* The breakdown is rebuilt from span aggregation (the Timerstat shape:
     per-name total seconds, largest first). *)
  let agg = Obs.Agg.create () in
  let agg_sink = Obs.Agg.sink agg in
  Obs.Ctx.add_sink obs agg_sink;
  let res_before = Obs.Resource.sample () in
  let t_start = Unix.gettimeofday () in
  (* Reject malformed inputs up front with a structured error rather than
     letting NaN coordinates or dangling pins surface as divergence deep
     inside the optimiser. *)
  Design.validate_exn d;
  (match meth with Efficient cfg -> Config.validate_exn cfg | _ -> ());
  Design.reset_net_weights d;
  let curve = ref [] in
  (* Checkpoint the best placement seen at any timing round (by the flow
     timer's TNS, tie-broken by WNS): timing-driven runs can cycle once
     TNS reaches zero, so the final iterate is not necessarily the best. *)
  let best_key = ref Float.neg_infinity in
  let best_hpwl = ref Float.infinity in
  let best_snap = ref None in
  let push_curve ~iter ~overflow ~tns ~wns =
    (match heartbeat with Some hb -> Obs.Heartbeat.note_timing hb ~tns ~wns | None -> ());
    let key = tns +. (0.1 *. wns) in
    let hpwl = Design.total_hpwl d in
    (match checkpoint_decision ~best_key:!best_key ~best_hpwl:!best_hpwl ~key ~hpwl with
    | New_best ->
        best_key := key;
        best_hpwl := hpwl;
        best_snap := Some (Design.snapshot d)
    | Tie_better_hpwl ->
        (* Accept the placement, but never let an eps-sized key regression
           lower the bar for the next round (satellite fix: the old code
           overwrote [best_key] here, letting ties ratchet it down). *)
        best_key := Float.max !best_key key;
        best_hpwl := hpwl;
        best_snap := Some (Design.snapshot d)
    | Keep -> ());
    curve := { iter; hpwl; overflow; tns; wns } :: !curve
  in
  (* A warm run shrinks the timing schedule of whatever config the
     method carries (the [Efficient] payload, or the default the other
     timing methods share). *)
  let meth =
    match meth with Efficient cfg when warm -> Efficient (warm_config cfg) | m -> m
  in
  let cfg_default = if warm then warm_config Config.default else Config.default in
  let extraction_state = ref None in
  let gp_params, hooks =
    match meth with
    | Vanilla ->
        ((if warm then warm_gp_params ~seed else base_gp_params ~seed), Gp.Globalplace.no_hooks)
    | Dp4 ->
        let nw = Net_weighting.create d ~topology in
        let hooks =
          {
            Gp.Globalplace.on_round =
              (fun ~iter ~overflow ->
                let tns, wns = Obs.Ctx.span obs "sta+weighting" (fun () -> Net_weighting.round nw) in
                push_curve ~iter ~overflow ~tns ~wns);
            extra_grad = (fun ~iter:_ ~wl_norm:_ ~gx:_ ~gy:_ -> ());
          }
        in
        (timing_gp_params ~warm ~seed cfg_default, hooks)
    | Diff_tdp ->
        let dt = Diff_timing.create d in
        let hooks =
          {
            Gp.Globalplace.on_round =
              (fun ~iter ~overflow ->
                let tns, wns = Obs.Ctx.span obs "sta+backprop" (fun () -> Diff_timing.round dt) in
                push_curve ~iter ~overflow ~tns ~wns);
            extra_grad =
              (fun ~iter:_ ~wl_norm ~gx ~gy ->
                Obs.Ctx.span obs "timing_grad" (fun () ->
                    add_normalized ~obs ~mult:0.4 ~wl_norm ~gx ~gy (fun ~gx ~gy ->
                        Diff_timing.add_grad dt ~mult:1.0 ~gx ~gy)));
          }
        in
        (timing_gp_params ~warm ~seed cfg_default, hooks)
    | Dist_tdp ->
        let ds = Distribution.create d ~topology in
        let hooks =
          {
            Gp.Globalplace.on_round =
              (fun ~iter ~overflow ->
                let tns, wns = Obs.Ctx.span obs "sta+anchors" (fun () -> Distribution.round ds) in
                push_curve ~iter ~overflow ~tns ~wns);
            extra_grad =
              (fun ~iter:_ ~wl_norm ~gx ~gy ->
                Obs.Ctx.span obs "timing_grad" (fun () ->
                    add_normalized ~obs ~mult:0.3 ~wl_norm ~gx ~gy (fun ~gx ~gy ->
                        Distribution.add_grad ds ~mult:1.0 ~gx ~gy)));
          }
        in
        (timing_gp_params ~warm ~seed cfg_default, hooks)
    | Dp4_in_ours ->
        (* Our engine and pin-pair loss, but pin-level slack information
           with DP4's momentum scheme instead of path extraction (the
           paper's 'w/o Path Extraction' ablation). *)
        let pl = Pin_level.create d ~topology in
        let hooks =
          {
            Gp.Globalplace.on_round =
              (fun ~iter ~overflow ->
                let tns, wns = Obs.Ctx.span obs "sta+weighting" (fun () -> Pin_level.round pl) in
                push_curve ~iter ~overflow ~tns ~wns);
            extra_grad =
              (fun ~iter:_ ~wl_norm ~gx ~gy ->
                Obs.Ctx.span obs "pp_grad" (fun () ->
                    add_normalized ~obs ~mult:cfg_default.beta ~wl_norm ~gx ~gy (fun ~gx ~gy ->
                        Pin_level.add_grad_raw pl ~gx ~gy)));
          }
        in
        (timing_gp_params ~warm ~seed cfg_default, hooks)
    | Efficient cfg ->
        let ex = Extraction.create ~obs d ~config:cfg ~topology in
        extraction_state := Some ex;
        let last_iter = cfg.timing_start + cfg.extra_iters in
        (* Anneal beta over the final iterations: the timing fixes are
           held by the accumulated pair weights and the best checkpoint,
           while the shrinking force lets wirelength recover. *)
        let cooldown iter =
          if cfg.cooldown_iters <= 0 then 1.0
          else begin
            let remaining = last_iter - iter in
            if remaining >= cfg.cooldown_iters then 1.0
            else Float.max 0.05 (float_of_int remaining /. float_of_int cfg.cooldown_iters)
          end
        in
        let hooks =
          {
            Gp.Globalplace.on_round =
              (fun ~iter ~overflow ->
                (* [Extraction.round] emits its own [sta] / [extraction]
                   child spans, so the breakdown keeps both the combined
                   and the per-component entries. *)
                let r =
                  Obs.Ctx.span obs "sta+extraction" (fun () -> Extraction.round ex ~iter)
                in
                (match heartbeat with
                | Some hb ->
                    Obs.Heartbeat.note_extraction hb ~failing:r.Extraction.num_failing
                      ~paths:r.Extraction.num_paths ~pairs:r.Extraction.num_pairs
                      ~sta_s:r.Extraction.sta_time ~extract_s:r.Extraction.extract_time
                | None -> ());
                push_curve ~iter ~overflow ~tns:r.Extraction.tns ~wns:r.Extraction.wns);
            extra_grad =
              (fun ~iter ~wl_norm ~gx ~gy ->
                Obs.Ctx.span obs "pp_grad" (fun () ->
                    add_normalized ~obs
                      ~mult:(Extraction.effective_beta ex *. cooldown iter)
                      ~wl_norm ~gx ~gy
                      (fun ~gx ~gy -> Extraction.add_grad_raw ex ~gx ~gy)));
          }
        in
        (timing_gp_params ~warm ~seed cfg, hooks)
  in
  let metrics_gp, metrics =
    Obs.Ctx.span obs "flow"
      ~attrs:
        [
          ("method", Obs.Json.String (method_name meth));
          ("design", Obs.Json.String d.name);
          ("seed", Obs.Json.Int seed);
        ]
      (fun () ->
        let _gp = Gp.Globalplace.run ~params:gp_params ~hooks ~obs ?heartbeat d in
        (* Keep the better of (final iterate, best checkpoint) under the
           common evaluation model. *)
        let metrics_gp =
          Obs.Ctx.span obs "evaluate" (fun () ->
              let final_m = Evalkit.Metrics.evaluate d in
              match !best_snap with
              | None -> final_m
              | Some snap ->
                  let final_pos = Design.snapshot d in
                  Design.restore d snap;
                  let snap_m = Evalkit.Metrics.evaluate d in
                  if snap_m.Evalkit.Metrics.tns > final_m.Evalkit.Metrics.tns then snap_m
                  else begin
                    Design.restore d final_pos;
                    final_m
                  end)
        in
        if legalize then begin
          Obs.Ctx.span obs "legalize" (fun () -> ignore (Gp.Legalize.run d));
          ignore (Obs.Ctx.span obs "detailed" (fun () -> Gp.Detailed.run d));
          (* The legalizer guarantees in-die, on-row, overlap-free cells;
             re-validate so any violation is a structured error at the
             flow boundary, not a silent bad result. *)
          Design.validate_exn ~placed:true d
        end;
        let metrics = Obs.Ctx.span obs "evaluate" (fun () -> Evalkit.Metrics.evaluate d) in
        Obs.Ctx.gauge obs "flow.hpwl" metrics.Evalkit.Metrics.hpwl;
        Obs.Ctx.gauge obs "flow.tns" metrics.Evalkit.Metrics.tns;
        Obs.Ctx.gauge obs "flow.wns" metrics.Evalkit.Metrics.wns;
        (metrics_gp, metrics))
  in
  let runtime = Unix.gettimeofday () -. t_start in
  Obs.Ctx.remove_sink obs agg_sink;
  Obs.Resource.update_gauges obs;
  {
    name = method_name meth;
    design = d.name;
    metrics;
    metrics_gp;
    runtime;
    curve = List.rev !curve;
    breakdown = Obs.Agg.to_breakdown agg;
    breakdown_self = Obs.Agg.to_self_breakdown agg;
    resource = Obs.Resource.delta ~before:res_before ~after:(Obs.Resource.sample ());
    extraction_rounds =
      (match !extraction_state with None -> [] | Some ex -> Extraction.rounds ex);
  }

(* ---- structured (JSON) result serialisation, shared by the [place]
   binary's --report-json and the bench harness's --json output ---- *)

let metrics_to_json (m : Evalkit.Metrics.t) =
  Obs.Json.Obj
    [
      ("hpwl", Obs.Json.Float m.Evalkit.Metrics.hpwl);
      ("tns", Obs.Json.Float m.Evalkit.Metrics.tns);
      ("wns", Obs.Json.Float m.Evalkit.Metrics.wns);
      ("num_failing", Obs.Json.Int m.Evalkit.Metrics.num_failing);
      ("num_endpoints", Obs.Json.Int m.Evalkit.Metrics.num_endpoints);
    ]

let curve_point_to_json (c : curve_point) =
  Obs.Json.Obj
    [
      ("iter", Obs.Json.Int c.iter);
      ("hpwl", Obs.Json.Float c.hpwl);
      ("overflow", Obs.Json.Float c.overflow);
      ("tns", Obs.Json.Float c.tns);
      ("wns", Obs.Json.Float c.wns);
    ]

let round_stats_to_json (r : Extraction.round_stats) =
  Obs.Json.Obj
    [
      ("iter", Obs.Json.Int r.Extraction.iter);
      ("tns", Obs.Json.Float r.Extraction.tns);
      ("wns", Obs.Json.Float r.Extraction.wns);
      ("num_failing", Obs.Json.Int r.Extraction.num_failing);
      ("num_paths", Obs.Json.Int r.Extraction.num_paths);
      ("num_pairs", Obs.Json.Int r.Extraction.num_pairs);
      ("sta_time", Obs.Json.Float r.Extraction.sta_time);
      ("extract_time", Obs.Json.Float r.Extraction.extract_time);
    ]

let result_to_json (r : result) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String r.name);
      ("design", Obs.Json.String r.design);
      ("runtime", Obs.Json.Float r.runtime);
      ("metrics", metrics_to_json r.metrics);
      ("metrics_gp", metrics_to_json r.metrics_gp);
      ("curve", Obs.Json.List (List.map curve_point_to_json r.curve));
      ( "breakdown",
        Obs.Json.Obj (List.map (fun (n, s) -> (n, Obs.Json.Float s)) r.breakdown) );
      ( "breakdown_self",
        Obs.Json.Obj (List.map (fun (n, s) -> (n, Obs.Json.Float s)) r.breakdown_self) );
      ("resource", Obs.Resource.delta_to_json r.resource);
      ("extraction_rounds", Obs.Json.List (List.map round_stats_to_json r.extraction_rounds));
    ]
